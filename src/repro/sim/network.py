"""Message transport between simulated endpoints.

Endpoints (servers, clients, the eManager) register a mailbox under a
name.  ``send`` delivers a payload after propagation latency plus
transmission time (size / sender NIC bandwidth).  Two properties matter
to the runtimes built on top:

* **FIFO per sender→receiver pair** — the AEON dominator protocol and the
  EventWave root sequencer both assume ordered channels; the transport
  enforces nondecreasing delivery times per pair.
* **Bandwidth serialization per sender** — large transfers (context
  migrations) queue on the sender's egress link, which is what bounds the
  eManager migration throughput in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from .cluster import InstanceType
from .kernel import Signal, Simulator
from .queues import Store

__all__ = ["Message", "Network", "LatencyModel"]


@dataclass(frozen=True)
class Message:
    """A delivered payload with its envelope."""

    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_at_ms: float


class LatencyModel:
    """Propagation latency between endpoints.

    Default: ``same_host_ms`` when src == dst, ``lan_ms`` otherwise (one
    intra-datacenter hop, the paper's EC2 placement).  Subclass or pass a
    custom function for other topologies.
    """

    def __init__(self, lan_ms: float = 0.25, same_host_ms: float = 0.01) -> None:
        self.lan_ms = lan_ms
        self.same_host_ms = same_host_ms

    def latency_ms(self, src: str, dst: str) -> float:
        """One-way propagation latency from ``src`` to ``dst``."""
        return self.same_host_ms if src == dst else self.lan_ms


class Network:
    """The datacenter fabric connecting all registered endpoints."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        default_gbps: float = 0.7,
    ) -> None:
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.default_gbps = default_gbps
        self._mailboxes: Dict[str, Store] = {}
        self._egress_gbps: Dict[str, float] = {}
        # Egress link busy-until time per sender, for bandwidth FIFO.
        self._egress_free_at: Dict[str, float] = {}
        # Last delivery time per (src, dst), for per-pair FIFO.
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        mailbox: Optional[Store] = None,
        itype: Optional[InstanceType] = None,
    ) -> Store:
        """Register an endpoint; returns its mailbox (created if absent)."""
        if name in self._mailboxes:
            raise ValueError(f"endpoint {name!r} already registered")
        box = mailbox if mailbox is not None else Store(self.sim, name=f"mbox:{name}")
        self._mailboxes[name] = box
        self._egress_gbps[name] = itype.nic_gbps if itype else self.default_gbps
        return box

    def unregister(self, name: str) -> None:
        """Remove an endpoint (e.g. a decommissioned server)."""
        self._mailboxes.pop(name, None)
        self._egress_gbps.pop(name, None)

    def mailbox(self, name: str) -> Store:
        """The mailbox of a registered endpoint."""
        return self._mailboxes[name]

    def is_registered(self, name: str) -> bool:
        """Whether ``name`` is a known endpoint."""
        return name in self._mailboxes

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        size_bytes: int = 256,
        on_delivered: Optional[Callable[[Message], None]] = None,
    ) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``.

        Delivery time = egress queueing + size/bandwidth + propagation,
        clamped to preserve per-(src, dst) FIFO order.  Unknown
        destinations raise ``KeyError`` immediately (the caller — e.g.
        a client with a stale context map — handles redirection at a
        higher layer).
        """
        if dst not in self._mailboxes:
            raise KeyError(f"unknown endpoint {dst!r}")
        now = self.sim.now
        gbps = self._egress_gbps.get(src, self.default_gbps)
        transmit_ms = (size_bytes * 8) / (gbps * 1e6) if gbps > 0 else 0.0
        start = max(now, self._egress_free_at.get(src, 0.0))
        finish = start + transmit_ms
        self._egress_free_at[src] = finish
        deliver_at = finish + self.latency.latency_ms(src, dst)
        last = self._last_delivery.get((src, dst), 0.0)
        deliver_at = max(deliver_at, last)
        self._last_delivery[(src, dst)] = deliver_at
        message = Message(src, dst, payload, size_bytes, now)
        self.messages_sent += 1
        self.bytes_sent += size_bytes

        def deliver() -> None:
            box = self._mailboxes.get(dst)
            if box is None:
                return  # endpoint vanished mid-flight (decommissioned)
            box.put(message)
            if on_delivered is not None:
                on_delivered(message)

        self.sim.schedule(deliver_at - now, deliver)

    def delay_signal(self, src: str, dst: str, size_bytes: int = 256) -> "Signal":
        """A signal firing when a message of ``size_bytes`` would arrive.

        Process-style runtimes (where the event itself is a simulator
        process) use this instead of mailbox delivery: the event yields
        the signal to 'travel' between servers.  Shares the egress link
        and per-pair FIFO bookkeeping with :meth:`send`, so in-flight
        ordering between the two styles stays consistent.
        """
        now = self.sim.now
        gbps = self._egress_gbps.get(src, self.default_gbps)
        transmit_ms = (size_bytes * 8) / (gbps * 1e6) if gbps > 0 else 0.0
        start = max(now, self._egress_free_at.get(src, 0.0))
        finish = start + transmit_ms
        self._egress_free_at[src] = finish
        deliver_at = finish + self.latency.latency_ms(src, dst)
        last = self._last_delivery.get((src, dst), 0.0)
        deliver_at = max(deliver_at, last)
        self._last_delivery[(src, dst)] = deliver_at
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        signal = self.sim.signal(name=f"net:{src}->{dst}")
        self.sim.schedule(deliver_at - now, signal.succeed, None)
        return signal
