"""Simulated servers and EC2-like instance types.

The paper deploys on ``m3.large`` (scalability experiments), ``m1.small``
(elastic game cluster) and ``m1.large``/``m1.medium``/``m1.small``
(migration-throughput microbenchmark, Fig. 9).  An instance type here is
a CPU core count, a relative speed factor and a NIC bandwidth — enough to
reproduce the relative ordering of those setups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from .kernel import Simulator
from .queues import Resource, Store

__all__ = [
    "InstanceType",
    "M1_SMALL",
    "M1_MEDIUM",
    "M1_LARGE",
    "M3_LARGE",
    "INSTANCE_TYPES",
    "Server",
    "Cluster",
]


@dataclass(frozen=True)
class InstanceType:
    """An EC2-like machine shape.

    ``speed`` scales CPU costs (1.0 = one m1.small-class core);
    ``nic_gbps`` bounds migration/transfer bandwidth.
    """

    name: str
    cores: int
    speed: float
    nic_gbps: float

    def cpu_ms(self, work_ms: float) -> float:
        """Wall milliseconds one core needs for ``work_ms`` of unit work."""
        return work_ms / self.speed


M1_SMALL = InstanceType("m1.small", cores=1, speed=1.0, nic_gbps=0.25)
M1_MEDIUM = InstanceType("m1.medium", cores=1, speed=2.0, nic_gbps=0.45)
M1_LARGE = InstanceType("m1.large", cores=2, speed=2.0, nic_gbps=0.7)
M3_LARGE = InstanceType("m3.large", cores=2, speed=2.6, nic_gbps=0.7)

INSTANCE_TYPES: Dict[str, InstanceType] = {
    t.name: t for t in (M1_SMALL, M1_MEDIUM, M1_LARGE, M3_LARGE)
}


class Server:
    """A simulated machine: CPU cores, NIC, a mailbox, and accounting.

    Runtimes place contexts/grains on servers; executing application or
    protocol work occupies a core for the scaled duration.  The mailbox
    is the single in-order channel used by :class:`repro.sim.network.Network`.
    """

    def __init__(self, sim: Simulator, name: str, itype: InstanceType) -> None:
        self.sim = sim
        self.name = name
        self.itype = itype
        self.cpu = Resource(sim, capacity=itype.cores, name=f"cpu:{name}")
        self.mailbox: Store = Store(sim, name=f"mbox:{name}")
        self.context_count = 0
        self.alive = True
        # Fail-stop state (driven by repro.faults.FaultInjector).
        self.crashed = False
        self.crashed_at_ms: Optional[float] = None
        self.crash_count = 0
        #: The fencing epoch this server *believes* it holds.  The
        #: recovery manager's fencing table is the authority; a server
        #: whose belief lags the table is stale and gets its writes
        #: rejected.  Heartbeats carry this value.
        self.fencing_epoch = 0
        #: Hooks fired inside crash()/restart() (crash realism: the
        #: eManager drops volatile context state at crash time and
        #: rehydrates from the durable checkpoint on restart).
        self.on_crash: List[Callable[["Server"], None]] = []
        self.on_restart: List[Callable[["Server"], None]] = []
        self._util_mark_busy = 0.0
        self._util_mark_time = 0.0

    def execute(self, work_ms: float) -> Generator:
        """Generator: occupy one core for ``work_ms`` of unit work.

        The wall-clock duration is scaled by the instance speed; if all
        cores are busy the request queues FIFO — this queueing is what
        produces saturation knees in the throughput figures.

        Returns the :meth:`Resource.use` generator directly (rather
        than delegating through a frame of its own): ``yield from``
        resumptions walk every intermediate frame, and this sits on the
        hottest path in the repository.
        """
        return self.cpu.use(self.itype.cpu_ms(work_ms))

    # ------------------------------------------------------------------
    # Fail-stop faults
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop the server.

        The machine object (and the contexts the runtime still maps to
        it) stay around so a recovery manager can enumerate what was
        lost; the injector additionally detaches the mailbox from the
        network so nothing is delivered here while down.  By default the
        in-memory context state survives as simulator bookkeeping; with
        crash realism enabled the eManager registers an ``on_crash``
        hook that drops it at crash time, so even a restart faster than
        the detector's lease is a true fail-stop.
        """
        self.alive = False
        self.crashed = True
        self.crashed_at_ms = self.sim.now
        self.crash_count += 1
        for hook in self.on_crash:
            hook(self)

    def restart(self) -> None:
        """Bring a crashed server back up.

        Contexts the runtime still maps here come back with whatever the
        failure model says survived: under the default (lenient) model
        their in-memory state is intact; with crash realism the state
        was dropped at crash time and an ``on_restart`` hook rehydrates
        it from the durable checkpoint + WAL before the contexts serve
        again.  Contexts already re-placed elsewhere stay there.
        """
        self.alive = True
        self.crashed = False
        self.crashed_at_ms = None
        for hook in self.on_restart:
            hook(self)

    # ------------------------------------------------------------------
    # Utilization reporting (consumed by the eManager)
    # ------------------------------------------------------------------
    def utilization_window(self) -> float:
        """CPU utilization (0..1) since the previous call to this method."""
        busy = self.cpu.busy_core_ms()
        now = self.sim.now
        elapsed = now - self._util_mark_time
        delta = busy - self._util_mark_busy
        self._util_mark_busy = busy
        self._util_mark_time = now
        if elapsed <= 0:
            return 0.0
        return min(1.0, delta / (elapsed * self.cpu.capacity))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Server {self.name} ({self.itype.name})>"


class Cluster:
    """A named collection of servers with a provisioning pool.

    ``provision``/``decommission`` model elastic scale-out/in: a newly
    provisioned server becomes usable only after ``boot_delay_ms``
    (the paper's elastic experiment pays this as migration lead time).
    """

    def __init__(self, sim: Simulator, boot_delay_ms: float = 8000.0) -> None:
        self.sim = sim
        self.boot_delay_ms = boot_delay_ms
        self.servers: Dict[str, Server] = {}
        self._counter = 0

    def add_server(self, itype: InstanceType, name: Optional[str] = None) -> Server:
        """Immediately add a booted server (initial deployment)."""
        self._counter += 1
        name = name or f"server-{self._counter}"
        if name in self.servers:
            raise ValueError(f"duplicate server name {name!r}")
        server = Server(self.sim, name, itype)
        self.servers[name] = server
        return server

    def provision(self, itype: InstanceType) -> "ProvisionHandle":
        """Start booting a new server; ready after ``boot_delay_ms``."""
        server = self.add_server(itype)
        server.alive = False
        ready = self.sim.signal(name=f"boot:{server.name}")

        def booted() -> None:
            server.alive = True
            ready.succeed(server)

        self.sim.schedule(self.boot_delay_ms, booted)
        return ProvisionHandle(server, ready)

    def decommission(self, name: str) -> None:
        """Remove a (drained) server from the cluster."""
        server = self.servers.pop(name)
        server.alive = False

    def crash_server(self, name: str) -> Server:
        """Fail-stop a server's *machine state* (it stays listed, for recovery).

        This flips only the cluster-side flags.  A full fail-stop also
        detaches the mailbox and marks the endpoint down on the network
        fault filter — :class:`repro.faults.FaultInjector` does all
        three; use it (with a :class:`~repro.faults.ServerCrash` event)
        unless you are testing the cluster layer in isolation.
        """
        server = self.servers[name]
        server.crash()
        return server

    def restart_server(self, name: str) -> Server:
        """Restart a previously crashed server (cluster-side flags only)."""
        server = self.servers[name]
        server.restart()
        return server

    def alive_servers(self) -> Dict[str, Server]:
        """Servers currently booted and usable."""
        return {n: s for n, s in self.servers.items() if s.alive}

    def __len__(self) -> int:
        return len(self.servers)


@dataclass
class ProvisionHandle:
    """A server being booted plus the signal firing when it is usable."""

    server: Server
    ready: "object"
