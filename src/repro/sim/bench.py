"""Kernel/runtime microbenchmarks: ``python -m repro.sim.bench``.

Five benchmarks bracket the simulation hot path, from pure kernel to
full stack:

* ``timeout_storm``   — many processes sleeping in tight loops (heap
  scheduling, process resume);
* ``store_pingpong``  — two processes bouncing items through two
  :class:`~repro.sim.queues.Store` objects (signal completion, the
  pre-triggered ``get`` fast path);
* ``resource_contention`` — processes contending on a 2-core
  :class:`~repro.sim.queues.Resource` (grant/release, waiter wakeup);
* ``game_tick``       — one end-to-end AEON game run (the whole stack:
  protocol, locking, network, metrics);
* ``massive_bulk``    — a quarter-million bulk-registered leaf contexts
  (columnar table, lazy materialization) under closed-loop load.

Each benchmark reports wall-clock events/second.  Results are merged
into a JSON file (default ``BENCH_kernel.json``) under a ``--label``
key, so before/after snapshots of an optimization live side by side::

    python -m repro.sim.bench --label before
    ...optimize...
    python -m repro.sim.bench --label after
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, Generator, List, Optional

from .kernel import Simulator
from .queues import Resource, Store

__all__ = ["run_benchmarks", "main"]


def _bench_timeout_storm() -> Dict[str, float]:
    """100 processes x 2000 timeouts with staggered delays."""
    sim = Simulator()
    n_procs, n_iters = 100, 2000

    def sleeper(offset: int) -> Generator:
        delay = 0.5 + (offset % 7) * 0.25
        for _ in range(n_iters):
            yield sim.timeout(delay)

    for i in range(n_procs):
        sim.process(sleeper(i))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {"events": n_procs * n_iters, "wall_s": elapsed}


def _bench_store_pingpong() -> Dict[str, float]:
    """Two processes bouncing a token through two stores 200k times."""
    sim = Simulator()
    rounds = 200_000
    a, b = Store(sim, "a"), Store(sim, "b")

    def pinger() -> Generator:
        for i in range(rounds):
            a.put(i)
            yield b.get()

    def ponger() -> Generator:
        for _ in range(rounds):
            token = yield a.get()
            b.put(token)

    sim.process(pinger())
    sim.process(ponger())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {"events": 2 * rounds, "wall_s": elapsed}


def _bench_resource_contention() -> Dict[str, float]:
    """16 processes x 10k holds of a 2-core resource (1 ms service)."""
    sim = Simulator()
    n_procs, n_iters = 16, 10_000
    cpu = Resource(sim, capacity=2, name="cpu")

    def worker() -> Generator:
        for _ in range(n_iters):
            yield from cpu.use(1.0)

    for _ in range(n_procs):
        sim.process(worker())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {"events": n_procs * n_iters, "wall_s": elapsed}


def _bench_game_tick() -> Dict[str, float]:
    """One end-to-end AEON game run (4 servers, 240 clients, 800 ms)."""
    from ..harness.runner import run_game  # late import: avoids a cycle

    start = time.perf_counter()
    result, _tb, _app = run_game(
        "aeon", 4, n_clients=240, duration_ms=800.0, warmup_ms=200.0,
        think_ms=2.0, seed=0,
    )
    elapsed = time.perf_counter() - start
    return {"events": result.completed, "wall_s": elapsed}


def _bench_massive_bulk() -> Dict[str, float]:
    """250k bulk-registered leaves, 512 clients, 600 ms of sampled taps.

    Wall clock covers the whole massive-tier path: columnar bulk
    registration, lazy first-touch materialization and the event loop.
    """
    from ..apps.massive import MassiveConfig, build_massive  # late: avoids a cycle
    from ..harness.runner import make_testbed
    from ..workloads.generators import ClosedLoopClients

    contexts = 250_000
    start = time.perf_counter()
    testbed = make_testbed("aeon", 32, seed=0)
    app = build_massive(
        testbed.runtime, MassiveConfig(contexts=contexts), testbed.servers
    )
    clients = ClosedLoopClients(
        testbed.runtime,
        app.sample_op,
        n_clients=512,
        think_ms=2.0,
        rng=testbed.rng,
        stop_at_ms=600.0,
    )
    clients.start()
    testbed.sim.run(until=2600.0)
    elapsed = time.perf_counter() - start
    completed = testbed.runtime.throughput.count_between(0.0, 2600.0)
    return {"events": completed, "wall_s": elapsed, "contexts": contexts}


BENCHMARKS: Dict[str, Callable[[], Dict[str, float]]] = {
    "timeout_storm": _bench_timeout_storm,
    "store_pingpong": _bench_store_pingpong,
    "resource_contention": _bench_resource_contention,
    "game_tick": _bench_game_tick,
    "massive_bulk": _bench_massive_bulk,
}


def run_benchmarks(names: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    """Run the selected benchmarks; returns name -> {events, wall_s, events_per_s}."""
    results: Dict[str, Dict[str, float]] = {}
    for name in names or sorted(BENCHMARKS):
        stats = BENCHMARKS[name]()
        stats["events_per_s"] = round(
            stats["events"] / stats["wall_s"] if stats["wall_s"] > 0 else 0.0, 1
        )
        stats["wall_s"] = round(stats["wall_s"], 4)
        results[name] = stats
    return results


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run benchmarks and merge results into a JSON file."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="key to store this snapshot under (e.g. before/after)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="result file (merged, not overwritten)")
    parser.add_argument("--bench", action="append", choices=sorted(BENCHMARKS),
                        help="run only this benchmark (repeatable)")
    args = parser.parse_args(argv)

    results = run_benchmarks(args.bench)
    for name, stats in results.items():
        print(f"{name:>22}: {stats['events_per_s']:>12,.1f} events/s "
              f"({stats['events']} events in {stats['wall_s']:.3f}s)")

    out = Path(args.out)
    doc = json.loads(out.read_text()) if out.exists() else {}
    doc.setdefault("python", platform.python_version())
    snapshot = doc.setdefault(args.label, {})
    snapshot.update(results)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} [{args.label}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
