"""Cell primitives and the executor strategy interface.

A :class:`Cell` is one independent unit of an experiment grid — a
self-contained deterministic simulation described by a
``"module:function"`` dotted path plus picklable kwargs.  An
:class:`Executor` turns a stream of cells into a stream of
:class:`CellResult`\\ s; the three backends differ only in *where* the
cell bodies run:

* :class:`SerialExecutor` — lazily, in this process, at ``result()``
  time (the historical ``jobs=1`` path);
* :class:`ProcessExecutor` — on a local ``ProcessPoolExecutor``, with
  retry-on-worker-death: a ``BrokenProcessPool`` respawns the pool and
  re-submits every in-flight cell, bounded by ``max_respawns`` — a
  SIGKILLed worker costs one cell retry, never the run;
* :class:`~repro.exec.queue.QueueExecutor` — on independently-launched
  worker processes draining a shared spool directory (see
  :mod:`repro.exec.queue`).

Because cell bodies are deterministic functions of their kwargs (the
determinism contract, docs/ARCHITECTURE.md), every backend produces
byte-identical values and the caller reassembles them in cell order —
the backend choice can never change figure data.
"""

from __future__ import annotations

import importlib
import logging
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Cell",
    "CellResult",
    "execute_cell",
    "execute_cell_timed",
    "resolve_jobs",
    "ExecutorError",
    "WorkerLostError",
    "CellFailedError",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "EXECUTOR_ENV",
    "RESPAWNS_ENV",
    "resolve_executor",
    "make_executor",
]

_log = logging.getLogger("repro.exec")

#: Environment default for the backend name (CLI ``--executor`` wins).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Environment default for :class:`ProcessExecutor` ``max_respawns``.
RESPAWNS_ENV = "REPRO_EXEC_RESPAWNS"

#: The registered backend names (``"pool"`` and ``"queue"`` need jobs /
#: workers; ``"serial"`` is the in-process path).
EXECUTORS = ("serial", "pool", "queue")


# ----------------------------------------------------------------------
# Cell primitives (the harness re-exports these)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One independent unit of an experiment grid.

    A cell is everything a worker process needs to run one
    self-contained simulation:

    * ``key`` — the cell's position in the figure assembly (e.g.
      ``("aeon", 8)`` for a scale-out curve point).  Only used by the
      enumerating figure function; opaque to the engine.
    * ``fn`` — the cell body as a ``"module:function"`` dotted path,
      resolved by :func:`execute_cell` *inside the worker*, so payloads
      stay picklable under fork, spawn and cross-process spool files.
    * ``kwargs`` — keyword arguments for ``fn``; must be picklable
      data (strings/numbers, or frozen spec dataclasses like
      :class:`~repro.harness.scenarios.ScenarioSpec`), typically
      ``system``/``scale``/``seed`` knobs plus the owning spec.

    The body must be deterministic given its kwargs (fresh
    :class:`~repro.sim.kernel.Simulator`, seeded
    :class:`~repro.sim.rng.RngRegistry`, no wall-clock reads) and return
    plain picklable data — that is what makes every executor backend
    byte-identical to the serial path.  See docs/ARCHITECTURE.md
    § Executors.
    """

    key: Tuple
    fn: str
    kwargs: Dict[str, Any]


@dataclass(frozen=True)
class CellResult:
    """The value one :class:`Cell` produced, tagged with its key."""

    key: Tuple
    value: Any


def execute_cell(cell: Cell) -> CellResult:
    """Run one cell (in this process) and wrap its return value.

    Resolves ``cell.fn``'s dotted ``"module:function"`` path via import,
    so it works identically in the parent process (serial path), in
    pool workers (parallel path) and in spool-queue workers.
    """
    module_name, _, fn_name = cell.fn.partition(":")
    fn = getattr(importlib.import_module(module_name), fn_name)
    return CellResult(key=cell.key, value=fn(**cell.kwargs))


def execute_cell_timed(cell: Cell) -> Tuple[CellResult, float]:
    """:func:`execute_cell` plus the cell's wall-clock milliseconds.

    The timing is store metadata only (it rides into the result-store
    manifest) — it never feeds back into a simulation, so determinism
    is untouched.  This is the worker payload whenever a
    :class:`~repro.results.ResultStore` is attached.
    """
    start = time.perf_counter()
    result = execute_cell(cell)
    return result, (time.perf_counter() - start) * 1000.0


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: ``0`` means one per CPU core."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def persist_quietly(store: Any, cell: Cell, value: Any, wall_ms: float) -> None:
    """Persist one completed cell; storage trouble never fails a sweep."""
    try:
        store.put(cell, value, wall_ms=wall_ms)
    except Exception as error:
        _log.warning(
            "result store: failed to persist cell %r (%s: %s); continuing",
            cell.key,
            type(error).__name__,
            error,
        )


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class ExecutorError(RuntimeError):
    """A backend could not complete its cells (lost workers, failed cell)."""


class WorkerLostError(ExecutorError):
    """Worker death exhausted the retry budget; ``cells`` are the lost keys.

    Every cell completed *before* the loss is already persisted (when a
    result store is attached), so the run is resumable: rerun with the
    same store and only the lost cells recompute.
    """

    def __init__(self, message: str, cells: Sequence[Tuple] = ()) -> None:
        super().__init__(message)
        self.cells = tuple(cells)


class CellFailedError(ExecutorError):
    """A queue worker reported a cell-body exception (with its traceback)."""

    def __init__(self, message: str, key: Optional[Tuple] = None) -> None:
        super().__init__(message)
        self.key = key


# ----------------------------------------------------------------------
# The strategy interface
# ----------------------------------------------------------------------
class Executor:
    """Backend interface: ``submit`` cells, collect :class:`CellResult`\\ s.

    ``submit(cell)`` returns a *handle* — an object whose ``result()``
    blocks until the cell's :class:`CellResult` is available (raising
    :class:`ExecutorError` when the backend lost it for good) and whose
    ``done()`` reports readiness without blocking.  ``as_completed()``
    yields the submitted handles in *completion* order;
    ``shutdown()`` releases workers/spool state.  Callers that need
    figure data iterate handles in submission order instead — cell
    order is what makes assembled data byte-identical across backends.
    """

    def submit(self, cell: Cell) -> Any:
        raise NotImplementedError

    def as_completed(self, poll_s: float = 0.02) -> Iterator[Any]:
        """Yield submitted handles as they complete (default: poll)."""
        pending = list(self._handles)
        while pending:
            progressed = False
            for handle in list(pending):
                if handle.done():
                    pending.remove(handle)
                    progressed = True
                    yield handle
            if pending and not progressed:
                time.sleep(poll_s)

    def shutdown(self, wait: bool = True) -> None:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Backend counters for the CLI summary line (may be empty)."""
        return {}

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


class _LazyHandle:
    """Serial-mode handle: runs its cell on first ``result()`` call.

    With a store attached, the freshly computed value is persisted
    immediately after execution — mid-``gather`` kills lose only the
    in-flight cell.
    """

    __slots__ = ("_cell", "_result", "_store")

    def __init__(self, cell: Cell, store: Any = None) -> None:
        self._cell = cell
        self._result: Optional[CellResult] = None
        self._store = store

    def done(self) -> bool:
        return self._result is not None

    def result(self) -> CellResult:
        if self._result is None:
            result, wall_ms = execute_cell_timed(self._cell)
            if self._store is not None:
                persist_quietly(self._store, self._cell, result.value, wall_ms)
            self._result = result
        return self._result


class SerialExecutor(Executor):
    """Lazy in-process execution — the historical ``jobs=1`` path.

    Cells run in submission order, in this process, when their handle's
    ``result()`` is first called (so a failing cell surfaces before
    later cells have burned any time).
    """

    def __init__(self, store: Any = None) -> None:
        self.store = store
        self._handles: List[_LazyHandle] = []

    def submit(self, cell: Cell) -> _LazyHandle:
        handle = _LazyHandle(cell, self.store)
        self._handles.append(handle)
        return handle

    def as_completed(self, poll_s: float = 0.02) -> Iterator[_LazyHandle]:
        for handle in list(self._handles):
            handle.result()
            yield handle

    def shutdown(self, wait: bool = True) -> None:
        self._handles.clear()


# ----------------------------------------------------------------------
# ProcessExecutor — the local pool, hardened
# ----------------------------------------------------------------------
def _default_respawns() -> int:
    raw = os.environ.get(RESPAWNS_ENV)
    if raw is None:
        return 2
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"invalid {RESPAWNS_ENV}={raw!r}; want an integer >= 0")
    if value < 0:
        raise ValueError(f"invalid {RESPAWNS_ENV}={raw!r}; want an integer >= 0")
    return value


class _PoolHandle:
    """Handle over a pool future that survives pool respawns."""

    __slots__ = ("cell", "future", "_executor")

    def __init__(self, executor: "ProcessExecutor", cell: Cell) -> None:
        self._executor = executor
        self.cell = cell
        self.future: Any = None

    def done(self) -> bool:
        future = self.future
        return (
            future is not None
            and future.done()
            and not isinstance(future.exception(), BrokenProcessPool)
        )

    def result(self) -> CellResult:
        return self._executor._result_of(self)


class ProcessExecutor(Executor):
    """A local ``ProcessPoolExecutor`` with retry-on-worker-death.

    A dead worker (OOM kill, SIGKILL, segfault) historically surfaced as
    a raw ``BrokenProcessPool`` that aborted the whole sweep.  Here the
    breakage is contained: the pool is respawned, every in-flight cell
    is re-submitted (cells are deterministic, so a re-run is invisible
    in the data), and only when ``max_respawns`` consecutive pool deaths
    are exhausted does a :class:`WorkerLostError` escape — naming the
    cells that were in flight, with every completed cell already
    persisted to the attached store (the run is resumable).

    Args: ``jobs`` worker processes (``0`` = one per core); ``store`` an
    optional :class:`~repro.results.ResultStore` each completed cell is
    persisted to; ``max_respawns`` the pool-respawn budget (default 2,
    or ``REPRO_EXEC_RESPAWNS``).
    """

    def __init__(
        self,
        jobs: int = 0,
        store: Any = None,
        max_respawns: Optional[int] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.max_respawns = (
            _default_respawns() if max_respawns is None else int(max_respawns)
        )
        self.respawns = 0
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.jobs
        )
        self._handles: List[_PoolHandle] = []
        self._lock = threading.Lock()
        self._dead: Optional[WorkerLostError] = None

    # -- submission -----------------------------------------------------
    def submit(self, cell: Cell) -> _PoolHandle:
        handle = _PoolHandle(self, cell)
        with self._lock:
            if self._dead is not None:
                raise self._dead
            self._start(handle)
            self._handles.append(handle)
        return handle

    def _start(self, handle: _PoolHandle) -> None:
        """(Re-)submit one handle's cell to the current pool."""
        if self.store is None:
            handle.future = self._pool.submit(execute_cell, handle.cell)
            return
        future = self._pool.submit(execute_cell_timed, handle.cell)

        def _on_done(f: Any, cell: Cell = handle.cell) -> None:
            if f.cancelled() or f.exception() is not None:
                return
            result, wall_ms = f.result()
            persist_quietly(self.store, cell, result.value, wall_ms)

        future.add_done_callback(_on_done)
        handle.future = future

    # -- collection -----------------------------------------------------
    def _result_of(self, handle: _PoolHandle) -> CellResult:
        while True:
            if self._dead is not None:
                raise self._dead
            future = handle.future
            try:
                value = future.result()
            except BrokenProcessPool:
                self._recover(handle)
                continue
            return value[0] if self.store is not None else value

    def _recover(self, handle: _PoolHandle) -> None:
        """Respawn the broken pool and re-submit every in-flight cell.

        All pending futures of a broken pool fail together, so many
        waiters may arrive here; the lock serializes them and the
        ``handle.future`` identity check makes exactly one perform the
        respawn — the rest find a fresh future already installed.
        """
        with self._lock:
            if self._dead is not None:
                raise self._dead
            future = handle.future
            if not (
                future.done()
                and isinstance(future.exception(), BrokenProcessPool)
            ):
                return  # another waiter already respawned for us
            inflight = [
                h
                for h in self._handles
                if not h.future.done()
                or isinstance(h.future.exception(), BrokenProcessPool)
            ]
            lost = [h.cell.key for h in inflight]
            if self.respawns >= self.max_respawns:
                self._dead = WorkerLostError(
                    f"worker death broke the process pool {self.respawns + 1} "
                    f"time(s); giving up on {len(lost)} in-flight cell(s): "
                    f"{', '.join(repr(k) for k in lost)}",
                    cells=lost,
                )
                self._pool.shutdown(wait=False, cancel_futures=True)
                raise self._dead
            self.respawns += 1
            _log.warning(
                "process pool broken (worker died); respawn %d/%d, "
                "re-submitting %d in-flight cell(s)",
                self.respawns,
                self.max_respawns,
                len(inflight),
            )
            old, self._pool = self._pool, ProcessPoolExecutor(max_workers=self.jobs)
            old.shutdown(wait=False)
            for h in inflight:
                self._start(h)

    def shutdown(self, wait: bool = True) -> None:
        """Join running cells, cancel queued ones (fail fast on error)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def stats(self) -> Dict[str, Any]:
        return {"respawns": self.respawns}


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def resolve_executor(name: Optional[str] = None, jobs: int = 1) -> str:
    """Fold an explicit name and ``REPRO_EXECUTOR`` into a backend name.

    Precedence: explicit ``name`` > the env var > jobs-based default
    (``serial`` for one job, ``pool`` otherwise).
    """
    chosen = name or os.environ.get(EXECUTOR_ENV) or None
    if chosen is None:
        return "serial" if resolve_jobs(jobs) == 1 else "pool"
    chosen = chosen.strip().lower()
    if chosen not in EXECUTORS:
        raise ValueError(
            f"unknown executor {chosen!r}; pick from {', '.join(EXECUTORS)}"
        )
    return chosen


def make_executor(
    executor: Any = None,
    jobs: int = 1,
    store: Any = None,
    queue_dir: Any = None,
    options: Optional[Dict[str, Any]] = None,
) -> Executor:
    """Build the backend for a run.

    ``executor`` is an :class:`Executor` instance (used as-is; ``jobs``
    and ``options`` are ignored), a backend name, or ``None`` (resolve
    via :func:`resolve_executor`; an explicit ``queue_dir`` implies the
    queue backend).  ``options`` are extra keyword arguments for the
    :class:`~repro.exec.queue.QueueExecutor` (``lease_timeout_s``,
    ``spawn_workers``, straggler knobs...).
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None and queue_dir is not None:
        name = "queue"
    else:
        name = resolve_executor(executor, jobs)
    if name == "serial":
        return SerialExecutor(store=store)
    if name == "pool":
        return ProcessExecutor(jobs=jobs, store=store)
    from .queue import QueueExecutor  # local import: queue builds on base

    return QueueExecutor(queue_dir=queue_dir, store=store, **(options or {}))
