"""Executor-backend microbenchmarks: ``python -m repro.exec.bench``.

Three benchmarks bracket the dispatch tier (the backends themselves,
not the simulation kernel — ``python -m repro.sim.bench`` covers that):

* ``dispatch_overhead`` — a batch of no-op cells through each backend,
  isolating per-cell submit/collect cost: serial is the floor, pool
  adds pickle + IPC, queue adds spool files + store round-trips;
* ``fig5a_quick``       — the real fig5a quick cell set end to end on
  serial vs pool(2) vs queue(2 spawned workers), the honest
  wall-clock a user sees when picking ``--executor``;
* ``straggler_speculation`` — a cell whose *first* attempt stalls
  (slow node) amid fast cells, drained by queue(2) with speculative
  re-dispatch off vs on; the speedup is first-result-wins recovering
  the run from the straggler.

Results merge into a JSON file (default ``BENCH_executor.json``) under
a ``--label`` key, so snapshots live side by side::

    python -m repro.exec.bench --label pr10

Cell bodies used by the benchmarks live in this module (resolved by
dotted path inside worker processes).  They are orchestration-layer
workloads — wall-clock sleeps and marker files are fine here; no
simulation data is produced, so the determinism contract is untouched.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .base import Cell, Executor, ProcessExecutor, SerialExecutor

__all__ = ["run_benchmarks", "main"]


# ----------------------------------------------------------------------
# Cell bodies (importable from worker subprocesses)
# ----------------------------------------------------------------------
def noop_cell(x: int, sleep_s: float = 0.0) -> int:
    """Return ``x`` after an optional wall-clock sleep."""
    if sleep_s:
        time.sleep(sleep_s)
    return x


def straggler_cell(x: int, slow_s: float, marker: str) -> int:
    """A straggling first attempt: create ``marker``, stall ``slow_s``.

    Any later attempt (a speculative re-dispatch) finds the marker and
    returns immediately — modelling a slow node whose re-dispatched
    copy lands on a healthy one.
    """
    path = Path(marker)
    if path.exists():
        return x
    path.touch()
    time.sleep(slow_s)
    return x


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
# Literal paths, not __name__-derived: under ``python -m`` this module
# runs as __main__, which worker processes cannot resolve.
_BODY = "repro.exec.bench:noop_cell"
_STRAGGLER = "repro.exec.bench:straggler_cell"


def _drain(executor: Executor, cells: List[Cell]) -> List[Any]:
    """Submit every cell, collect results in submission order."""
    handles = [executor.submit(cell) for cell in cells]
    return [handle.result() for handle in handles]


def _make_queue(tmp: str, **options: Any):
    from .queue import QueueExecutor  # local import: optional backend

    return QueueExecutor(queue_dir=Path(tmp) / "spool", **options)


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def _bench_dispatch_overhead() -> Dict[str, Any]:
    """32 no-op cells per backend; per-cell dispatch overhead in ms.

    One warm-up cell runs before the clock starts, so pool spawn and
    spool setup cost is reported separately (``setup_s``) from the
    steady-state per-cell figure.
    """
    n = 32
    out: Dict[str, Any] = {"cells": n}
    cells = [Cell(key=(i,), fn=_BODY, kwargs={"x": i}) for i in range(n)]
    warmup = Cell(key=("warmup",), fn=_BODY, kwargs={"x": -1})

    def _measure(build: Callable[[], Executor]) -> Dict[str, float]:
        setup_start = time.perf_counter()
        executor = build()
        try:
            _drain(executor, [warmup])
            setup_s = time.perf_counter() - setup_start
            start = time.perf_counter()
            _drain(executor, cells)
            wall = time.perf_counter() - start
        finally:
            executor.shutdown()
        return {
            "setup_s": round(setup_s, 4),
            "per_cell_ms": round(wall * 1000.0 / n, 3),
        }

    out["serial"] = _measure(SerialExecutor)
    out["pool"] = _measure(lambda: ProcessExecutor(jobs=2))
    tmp = tempfile.mkdtemp(prefix="repro-bench-q-")
    try:
        out["queue"] = _measure(
            lambda: _make_queue(tmp, spawn_workers=2, poll_interval_s=0.05)
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return out


def _bench_fig5a_quick() -> Dict[str, Any]:
    """The fig5a quick cell set on each backend, end to end."""
    from ..harness.scenarios import expand, prepare_scenario

    cells = expand(prepare_scenario("fig5a", scale="quick", seed=0))
    out: Dict[str, Any] = {"cells": len(cells)}

    start = time.perf_counter()
    serial = _drain(SerialExecutor(), cells)
    out["serial_s"] = round(time.perf_counter() - start, 3)

    with ProcessExecutor(jobs=2) as pool:
        start = time.perf_counter()
        pooled = _drain(pool, cells)
        out["pool2_s"] = round(time.perf_counter() - start, 3)

    tmp = tempfile.mkdtemp(prefix="repro-bench-q-")
    try:
        with _make_queue(tmp, spawn_workers=2) as queue:
            start = time.perf_counter()
            queued = _drain(queue, cells)
            out["queue2_s"] = round(time.perf_counter() - start, 3)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # Not a test, but cheap insurance that the bench exercised the real
    # byte-identity property rather than three divergent runs.
    out["identical"] = serial == pooled == queued
    return out


def _bench_straggler_speculation() -> Dict[str, Any]:
    """Queue(2) draining 6 fast cells + 1 straggler, speculation off/on.

    The straggler's first attempt stalls ``slow_s`` wall-clock seconds;
    with speculation on, the fast cells' completed durations feed the
    p90 deadline, the stalled claim is re-published past it, and the
    fresh attempt returns immediately (first result wins).
    """
    slow_s = 6.0
    fast = [
        Cell(key=(i,), fn=_BODY, kwargs={"x": i, "sleep_s": 0.05})
        for i in range(6)
    ]
    policies = {
        "off": {"straggler_min_s": 3600.0},
        "on": {
            "straggler_min_s": 1.0,
            "straggler_factor": 2.0,
            "straggler_min_samples": 3,
        },
    }
    out: Dict[str, Any] = {"slow_s": slow_s, "cells": len(fast) + 1}
    for mode, policy in policies.items():
        tmp = tempfile.mkdtemp(prefix="repro-bench-q-")
        try:
            straggler = Cell(
                key=("straggler",),
                fn=_STRAGGLER,
                kwargs={
                    "x": 99,
                    "slow_s": slow_s,
                    "marker": str(Path(tmp) / "first-attempt"),
                },
            )
            with _make_queue(
                tmp, spawn_workers=2, poll_interval_s=0.05, **policy
            ) as queue:
                start = time.perf_counter()
                _drain(queue, fast + [straggler])
                out[f"{mode}_s"] = round(time.perf_counter() - start, 3)
                out[f"{mode}_speculations"] = queue.stats()["speculations"]
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    out["speedup"] = round(out["off_s"] / out["on_s"], 2) if out["on_s"] else 0.0
    return out


BENCHMARKS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "dispatch_overhead": _bench_dispatch_overhead,
    "fig5a_quick": _bench_fig5a_quick,
    "straggler_speculation": _bench_straggler_speculation,
}


def run_benchmarks(names: Optional[List[str]] = None) -> Dict[str, Dict[str, Any]]:
    """Run the selected benchmarks; returns name -> stats dict."""
    results: Dict[str, Dict[str, Any]] = {}
    for name in names or sorted(BENCHMARKS):
        results[name] = BENCHMARKS[name]()
    return results


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run benchmarks and merge results into a JSON file."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current",
                        help="key to store this snapshot under (e.g. pr10)")
    parser.add_argument("--out", default="BENCH_executor.json",
                        help="result file (merged, not overwritten)")
    parser.add_argument("--bench", action="append", choices=sorted(BENCHMARKS),
                        help="run only this benchmark (repeatable)")
    args = parser.parse_args(argv)

    results = run_benchmarks(args.bench)
    for name, stats in results.items():
        print(f"{name}: {json.dumps(stats, sort_keys=True)}")

    out = Path(args.out)
    doc = json.loads(out.read_text()) if out.exists() else {}
    doc.setdefault("python", platform.python_version())
    snapshot = doc.setdefault(args.label, {})
    snapshot.update(results)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} [{args.label}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
