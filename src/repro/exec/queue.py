"""The filesystem work queue: spool protocol + coordinating executor.

The queue turns a directory (default ``.repro_queue/``) into a shared
work queue any number of independently-launched worker processes drain
— same box or any box sharing the filesystem::

    # terminal 1: the coordinator publishes cells and collects results
    python -m repro.harness.experiments --all --scale quick --executor queue

    # terminals 2..N (or other machines): workers drain the spool
    python -m repro.exec.worker --queue-dir .repro_queue

Layout::

    .repro_queue/
        QUEUE.json            # coordinator config: result-bus dir, tag
        queue/
            <key>.<att>.task  # pending claimable tasks (pickled Cell)
        active/
            <key>.<att>.<worker>.task   # claimed (renamed by the worker)
        heartbeats/
            <worker>.json     # pid, current cell key, renewed each poll
        failed/
            <key>.<att>.json  # cell-body exception + remote traceback
        store/                # default result bus (ResultStore) when the
                              # coordinator has no shared --cache-dir

The protocol leans on two filesystem atomics only — ``os.rename`` for
claims (exactly one of N racing workers wins a task file) and the
result store's write-temp-then-rename for results — so it needs no
locks, no sockets and no coordinator liveness for workers to make
progress.

Robustness (see docs/ARCHITECTURE.md § Executors):

* **Heartbeats/leases** — each worker renews ``heartbeats/<id>.json``
  every poll interval (a background thread keeps renewing *during* a
  long cell).  The coordinator declares a claim dead when its worker's
  heartbeat is older than ``lease_timeout_s`` and renames the task back
  into ``queue/`` — a worker that dies mid-cell costs exactly that
  cell's retry, never the run.
* **Stragglers** — once enough cells have completed for a p90 estimate,
  a claim running past ``max(straggler_min_s, straggler_factor * p90)``
  is speculatively re-published as a new attempt; whichever attempt
  lands in the result bus first wins (store writes are atomic, and both
  attempts compute byte-identical values), the loser's write is a
  harmless same-bytes overwrite.
* **First-result-wins dedup** — attempts are keyed by the cell's
  content hash (:func:`repro.results.cell_key`), so duplicate and
  speculative attempts can never disagree or double-count.

Lease reclaims and speculative dispatches are recorded as event lines
in the result-bus manifest (``ResultStore.events()``) for post-mortem
accounting.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import re
import socket
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..results.store import MISS, ResultStore, STORE_TAG, cell_key
from .base import (
    Cell,
    CellFailedError,
    CellResult,
    Executor,
    ExecutorError,
)

__all__ = [
    "DEFAULT_QUEUE_DIR",
    "QUEUE_DIR_ENV",
    "CONFIG_NAME",
    "STOP_NAME",
    "Task",
    "worker_id",
    "publish",
    "claim",
    "requeue",
    "write_heartbeat",
    "read_heartbeat",
    "write_failure",
    "read_failure",
    "read_config",
    "write_config",
    "QueueExecutor",
]

_log = logging.getLogger("repro.exec.queue")

#: Default spool directory (relative to the invocation's CWD).
DEFAULT_QUEUE_DIR = ".repro_queue"

#: Environment override for the spool directory.
QUEUE_DIR_ENV = "REPRO_QUEUE_DIR"

CONFIG_NAME = "QUEUE.json"

#: Sentinel file: workers exit when they see it (coordinator-written).
STOP_NAME = "STOP"

_TASK_SUFFIX = ".task"


# ----------------------------------------------------------------------
# Spool-file protocol (shared by coordinator and workers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Task:
    """One claimable attempt at a cell, as pickled into a task file."""

    key: str  # content hash (repro.results.cell_key)
    attempt: int
    cell: Cell


def _queue_dir(root: Path) -> Path:
    return root / "queue"


def _active_dir(root: Path) -> Path:
    return root / "active"


def _heartbeat_dir(root: Path) -> Path:
    return root / "heartbeats"


def _failed_dir(root: Path) -> Path:
    return root / "failed"


def ensure_layout(root: Path) -> None:
    for sub in (_queue_dir(root), _active_dir(root), _heartbeat_dir(root),
                _failed_dir(root)):
        sub.mkdir(parents=True, exist_ok=True)


def worker_id(base: Optional[str] = None) -> str:
    """A filesystem-safe worker identity (default ``host-pid``)."""
    raw = base or f"{socket.gethostname()}-{os.getpid()}"
    return re.sub(r"[^A-Za-z0-9_-]", "_", raw)


def _task_name(key: str, attempt: int) -> str:
    return f"{key}.{attempt:03d}{_TASK_SUFFIX}"


def _parse_task_name(name: str) -> Tuple[str, int]:
    stem = name[: -len(_TASK_SUFFIX)]
    key, _, attempt = stem.partition(".")
    return key, int(attempt.split(".")[0])


def _parse_active_name(name: str) -> Tuple[str, int, str]:
    """``<key>.<att>.<worker>.task`` -> (key, attempt, worker)."""
    stem = name[: -len(_TASK_SUFFIX)]
    key, _, rest = stem.partition(".")
    attempt, _, worker = rest.partition(".")
    return key, int(attempt), worker


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def publish(root: Path, cell: Cell, key: str, attempt: int = 0) -> Path:
    """Atomically publish one claimable attempt into ``queue/``."""
    ensure_layout(root)
    path = _queue_dir(root) / _task_name(key, attempt)
    _atomic_write(path, pickle.dumps(Task(key, attempt, cell)))
    return path


def claim(root: Path, worker: str) -> Optional[Tuple[Path, Task]]:
    """Claim the oldest pending task by renaming it into ``active/``.

    ``os.rename`` is the atomicity primitive: of N workers racing for
    one task file exactly one rename succeeds; the rest see ``ENOENT``
    and move on.  Returns ``(active_path, task)`` or ``None`` when the
    queue is empty.  An unreadable task file (torn publish from a
    killed coordinator) is discarded.
    """
    try:
        names = sorted(os.listdir(_queue_dir(root)))
    except FileNotFoundError:
        return None
    for name in names:
        if not name.endswith(_TASK_SUFFIX) or ".tmp" in name:
            continue
        source = _queue_dir(root) / name
        target = _active_dir(root) / f"{name[: -len(_TASK_SUFFIX)]}.{worker}{_TASK_SUFFIX}"
        try:
            os.rename(source, target)
        except OSError:
            continue  # lost the race (or the file vanished)
        try:
            task = pickle.loads(target.read_bytes())
        except Exception:
            _log.warning("queue: discarding unreadable task file %s", name)
            target.unlink(missing_ok=True)
            continue
        return target, task
    return None


def requeue(root: Path, active_path: Path) -> bool:
    """Return a claimed task to ``queue/`` (lease expiry); False if gone."""
    key, attempt, _worker = _parse_active_name(active_path.name)
    try:
        os.rename(active_path, _queue_dir(root) / _task_name(key, attempt))
    except OSError:
        return False  # the worker finished (or another reclaim won)
    return True


def write_heartbeat(
    root: Path, worker: str, current: Optional[str] = None, seq: int = 0
) -> None:
    """Renew ``worker``'s heartbeat (pid, current cell key, wall time)."""
    payload = {
        "worker": worker,
        "pid": os.getpid(),
        "current": current,
        "seq": seq,
        "time": time.time(),
    }
    _atomic_write(
        _heartbeat_dir(root) / f"{worker}.json",
        json.dumps(payload, sort_keys=True).encode("utf-8"),
    )


def read_heartbeat(root: Path, worker: str) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(
            (_heartbeat_dir(root) / f"{worker}.json").read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None


def write_failure(
    root: Path, key: str, attempt: int, worker: str, error: BaseException,
    traceback_text: str,
) -> None:
    """Record a cell-body exception (cells are deterministic — one
    failure marker is definitive, retrying elsewhere cannot help)."""
    payload = {
        "key": key,
        "attempt": attempt,
        "worker": worker,
        "error": f"{type(error).__name__}: {error}",
        "traceback": traceback_text,
        "time": time.time(),
    }
    _atomic_write(
        _failed_dir(root) / f"{key}.{attempt:03d}.json",
        json.dumps(payload, sort_keys=True).encode("utf-8"),
    )


def read_failure(root: Path, key: str) -> Optional[Dict[str, Any]]:
    for path in sorted(_failed_dir(root).glob(f"{key}.*.json")):
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
    return None


def write_config(root: Path, store_dir: Path) -> None:
    """Advertise the result-bus location + store tag to workers."""
    payload = {
        "store": str(store_dir),
        "tag": STORE_TAG,
        "coordinator_pid": os.getpid(),
        "time": time.time(),
    }
    _atomic_write(
        root / CONFIG_NAME, json.dumps(payload, sort_keys=True).encode("utf-8")
    )


def read_config(root: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads((root / CONFIG_NAME).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


# ----------------------------------------------------------------------
# The coordinating executor
# ----------------------------------------------------------------------
class _QueueHandle:
    """Handle over one outstanding queue cell."""

    __slots__ = ("cell", "key", "_executor", "_result", "_error")

    def __init__(self, executor: "QueueExecutor", cell: Cell, key: str) -> None:
        self._executor = executor
        self.cell = cell
        self.key = key
        self._result: Optional[CellResult] = None
        self._error: Optional[ExecutorError] = None

    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def result(self) -> CellResult:
        return self._executor._result_of(self)

    def _finish(self) -> CellResult:
        if self._error is not None:
            raise self._error
        return self._result


class QueueExecutor(Executor):
    """Coordinator for the spool-directory work queue.

    ``submit`` publishes each cell as a claim file under
    ``queue_dir/queue/``; any number of ``python -m repro.exec.worker``
    processes sharing the filesystem claim, execute and push results
    into the shared :class:`~repro.results.ResultStore` bus, which the
    coordinator polls.  See the module docstring for the protocol and
    failure semantics.

    Args: ``queue_dir`` the spool directory (default ``.repro_queue`` or
    ``$REPRO_QUEUE_DIR``); ``store`` a shared result store to use as the
    bus (e.g. the run's cache store — default: a private store under
    ``queue_dir/store``); ``lease_timeout_s`` how stale a worker
    heartbeat may grow before its claim is re-queued;
    ``poll_interval_s`` the coordinator/worker poll cadence;
    ``straggler_factor``/``straggler_min_s``/``straggler_min_samples``
    the speculative re-dispatch policy (deadline = ``max(min_s, factor
    * p90 of completed cell durations)`` once ``min_samples`` cells have
    completed); ``max_attempts`` the total attempt cap per cell;
    ``spawn_workers`` launches that many local worker subprocesses for
    self-contained runs (external workers can still join).
    """

    def __init__(
        self,
        queue_dir: Any = None,
        store: Optional[ResultStore] = None,
        lease_timeout_s: float = 30.0,
        poll_interval_s: float = 0.2,
        straggler_factor: float = 3.0,
        straggler_min_s: float = 10.0,
        straggler_min_samples: int = 5,
        max_attempts: int = 4,
        spawn_workers: int = 0,
    ) -> None:
        self.root = Path(
            queue_dir or os.environ.get(QUEUE_DIR_ENV) or DEFAULT_QUEUE_DIR
        )
        self.lease_timeout_s = float(lease_timeout_s)
        self.poll_interval_s = float(poll_interval_s)
        self.straggler_factor = float(straggler_factor)
        self.straggler_min_s = float(straggler_min_s)
        self.straggler_min_samples = int(straggler_min_samples)
        self.max_attempts = int(max_attempts)
        ensure_layout(self.root)
        (self.root / STOP_NAME).unlink(missing_ok=True)
        # The result bus.  A shared cache store doubles as the bus; its
        # --refresh semantics live in `load`, which we bypass: `fetch`
        # reads by raw key without touching hit/miss accounting, and
        # under refresh the coordinator discards stale entries at
        # submit time so a pre-existing result can't short-circuit the
        # recompute.
        self._refresh = bool(store is not None and store.refresh)
        self.bus = store if store is not None else ResultStore(self.root / "store")
        write_config(self.root, self.bus.root)
        self.reclaims = 0
        self.speculations = 0
        self.completed_cells = 0
        self._handles: List[_QueueHandle] = []
        self._outstanding: Dict[str, _QueueHandle] = {}
        self._attempts: Dict[str, int] = {}
        self._submitted_at: Dict[str, float] = {}
        self._claims: Dict[str, Tuple[str, float]] = {}  # key -> (worker, since)
        self._durations: List[float] = []
        self._spawned: List[subprocess.Popen] = []
        for _ in range(int(spawn_workers)):
            self._spawned.append(self._spawn_worker())

    def _spawn_worker(self) -> subprocess.Popen:
        """Launch one local worker subprocess bound to this coordinator."""
        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.exec.worker",
                "--queue-dir",
                str(self.root),
                "--poll-interval",
                str(self.poll_interval_s),
                "--parent-pid",
                str(os.getpid()),
            ],
            env=env,
        )

    # -- submission -----------------------------------------------------
    def submit(self, cell: Cell) -> _QueueHandle:
        key = cell_key(cell)
        handle = self._outstanding.get(key)
        if handle is not None:
            return handle  # same-content cell: one spool entry serves both
        handle = _QueueHandle(self, cell, key)
        if self._refresh:
            self.bus.discard(key)
        else:
            value = self.bus.fetch(key)
            if value is not MISS:
                # A previous run (or another coordinator) already
                # computed this cell — resume without dispatching.
                handle._result = CellResult(key=cell.key, value=value)
                self._handles.append(handle)
                return handle
        publish(self.root, cell, key, attempt=0)
        self._attempts[key] = 0
        self._submitted_at[key] = time.monotonic()
        self._outstanding[key] = handle
        self._handles.append(handle)
        return handle

    # -- collection -----------------------------------------------------
    def _result_of(self, handle: _QueueHandle) -> CellResult:
        while not handle.done():
            if not self._service():
                time.sleep(self.poll_interval_s)
        return handle._finish()

    def as_completed(self, poll_s: float = 0.02) -> Iterator[_QueueHandle]:
        pending = list(self._handles)
        while pending:
            ready = [h for h in pending if h.done()]
            if not ready and not self._service():
                time.sleep(self.poll_interval_s)
                continue
            for handle in ready:
                pending.remove(handle)
                yield handle

    def _service(self) -> bool:
        """One coordinator pass: collect, police leases, speculate.

        Returns True when any cell completed (progress — skip the poll
        sleep and immediately look again).
        """
        progressed = self._collect()
        self._check_leases()
        self._check_stragglers()
        return progressed

    def _collect(self) -> bool:
        progressed = False
        for key, handle in list(self._outstanding.items()):
            if self.bus.contains(key):
                value = self.bus.fetch(key)
                if value is MISS:
                    continue  # torn entry; the next pass re-reads
                handle._result = CellResult(key=handle.cell.key, value=value)
                self._complete(key)
                progressed = True
                continue
            failure = read_failure(self.root, key)
            if failure is not None:
                handle._error = CellFailedError(
                    f"cell {handle.cell.key!r} raised in worker "
                    f"{failure.get('worker')}: {failure.get('error')}\n"
                    f"{failure.get('traceback', '')}",
                    key=handle.cell.key,
                )
                self._complete(key)
                progressed = True
        return progressed

    def _complete(self, key: str) -> None:
        claimed = self._claims.pop(key, None)
        started = claimed[1] if claimed else self._submitted_at.get(key)
        if started is not None:
            self._durations.append(time.monotonic() - started)
        self._outstanding.pop(key, None)
        self._submitted_at.pop(key, None)
        self.completed_cells += 1
        # Sweep leftover attempts (a speculative loser, a stale claim).
        for path in _queue_dir(self.root).glob(f"{key}.*{_TASK_SUFFIX}"):
            path.unlink(missing_ok=True)

    def _check_leases(self) -> None:
        """Re-queue claims whose worker heartbeat has gone stale."""
        now_wall = time.time()
        now = time.monotonic()
        try:
            names = os.listdir(_active_dir(self.root))
        except FileNotFoundError:
            return
        for name in sorted(names):
            if not name.endswith(_TASK_SUFFIX) or ".tmp" in name:
                continue
            try:
                key, _attempt, worker = _parse_active_name(name)
            except ValueError:
                continue
            if key not in self._outstanding:
                # Completed (or foreign) leftover; sweep our own.
                if key not in self._claims:
                    (_active_dir(self.root) / name).unlink(missing_ok=True)
                continue
            claimed = self._claims.get(key)
            if claimed is None or claimed[0] != worker:
                self._claims[key] = (worker, now)
                claimed = self._claims[key]
            heartbeat = read_heartbeat(self.root, worker)
            beat_fresh = (
                heartbeat is not None
                and now_wall - float(heartbeat.get("time", 0.0)) <= self.lease_timeout_s
            )
            claim_age = now - claimed[1]
            if beat_fresh or claim_age <= self.lease_timeout_s:
                continue
            if requeue(self.root, _active_dir(self.root) / name):
                self.reclaims += 1
                self._claims.pop(key, None)
                self._note(
                    "lease_reclaimed", key,
                    worker=worker, claim_age_s=round(claim_age, 3),
                )
                _log.warning(
                    "queue: worker %s lease expired (%.1fs); re-queued cell %s…",
                    worker, claim_age, key[:12],
                )

    def _check_stragglers(self) -> None:
        """Speculatively re-publish claims running far past the p90."""
        if len(self._durations) < max(1, self.straggler_min_samples):
            return
        ordered = sorted(self._durations)
        p90 = ordered[int(0.9 * (len(ordered) - 1))]
        deadline = max(self.straggler_min_s, self.straggler_factor * p90)
        now = time.monotonic()
        for key, (worker, since) in list(self._claims.items()):
            if key not in self._outstanding or now - since <= deadline:
                continue
            attempt = self._attempts.get(key, 0)
            if attempt + 1 >= self.max_attempts:
                continue
            if any(_queue_dir(self.root).glob(f"{key}.*{_TASK_SUFFIX}")):
                continue  # an attempt is already waiting for a claimant
            self._attempts[key] = attempt + 1
            publish(self.root, self._outstanding[key].cell, key, attempt + 1)
            self.speculations += 1
            self._note(
                "speculative_dispatch", key,
                worker=worker, attempt=attempt + 1,
                running_s=round(now - since, 3), deadline_s=round(deadline, 3),
            )
            _log.warning(
                "queue: cell %s… running %.1fs (deadline %.1fs on %s); "
                "speculatively re-dispatched as attempt %d",
                key[:12], now - since, deadline, worker, attempt + 1,
            )

    def _note(self, event: str, key: str, **fields: Any) -> None:
        try:
            self.bus.note({"event": event, "cell_key": key, **fields})
        except Exception:  # accounting must never fail the run
            _log.debug("queue: failed to record %s event", event, exc_info=True)

    # -- lifecycle ------------------------------------------------------
    def workers_seen(self) -> List[str]:
        """Worker ids that have ever heartbeated into this spool."""
        try:
            return sorted(
                p.stem for p in _heartbeat_dir(self.root).glob("*.json")
            )
        except OSError:
            return []

    def shutdown(self, wait: bool = True) -> None:
        """Withdraw pending tasks and stop workers this coordinator spawned.

        Externally-launched workers are left running (they idle on an
        empty queue or exit on their ``--max-idle``); a ``STOP`` file is
        written so drained workers exit promptly.
        """
        for key in list(self._outstanding):
            for path in _queue_dir(self.root).glob(f"{key}.*{_TASK_SUFFIX}"):
                path.unlink(missing_ok=True)
        try:
            (self.root / STOP_NAME).write_text("stopped by coordinator\n")
        except OSError:
            pass
        for proc in self._spawned:
            if proc.poll() is None:
                proc.terminate()
        if wait:
            for proc in self._spawned:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10.0)
        self._spawned.clear()

    def stats(self) -> Dict[str, Any]:
        return {
            "completed": self.completed_cells,
            "reclaims": self.reclaims,
            "speculations": self.speculations,
            "workers": len(self.workers_seen()),
        }
