"""``repro.exec`` — pluggable executor backends for the cell engine.

Cell execution is a *strategy*: every backend implements the
:class:`~repro.exec.base.Executor` interface (``submit(cell) -> handle``,
``as_completed()``, ``shutdown()``) and the harness picks one per run
(``--executor serial|pool|queue`` or ``REPRO_EXECUTOR``):

* :class:`~repro.exec.base.SerialExecutor` — lazy in-process execution,
  the historical ``jobs=1`` path;
* :class:`~repro.exec.base.ProcessExecutor` — a local
  ``ProcessPoolExecutor`` hardened with retry-on-worker-death (respawn
  the pool, re-submit in-flight cells, bounded retries);
* :class:`~repro.exec.queue.QueueExecutor` — a filesystem work queue
  under a spool directory that any number of independently-launched
  ``python -m repro.exec.worker`` processes (same box or any box
  sharing the filesystem) drain concurrently, with worker heartbeats,
  lease-expiry re-queue and p90-based speculative straggler
  re-dispatch; results flow back through the
  :class:`~repro.results.ResultStore` result bus.

This package also owns the cell primitives themselves
(:class:`~repro.exec.base.Cell`, :func:`~repro.exec.base.execute_cell`)
— the harness layers on top.  See docs/ARCHITECTURE.md § Executors.
"""

from .base import (
    Cell,
    CellFailedError,
    CellResult,
    EXECUTOR_ENV,
    EXECUTORS,
    Executor,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    WorkerLostError,
    execute_cell,
    execute_cell_timed,
    make_executor,
    resolve_executor,
    resolve_jobs,
)
from .queue import DEFAULT_QUEUE_DIR, QUEUE_DIR_ENV, QueueExecutor

__all__ = [
    "Cell",
    "CellResult",
    "execute_cell",
    "execute_cell_timed",
    "resolve_jobs",
    "Executor",
    "ExecutorError",
    "WorkerLostError",
    "CellFailedError",
    "SerialExecutor",
    "ProcessExecutor",
    "QueueExecutor",
    "EXECUTORS",
    "EXECUTOR_ENV",
    "DEFAULT_QUEUE_DIR",
    "QUEUE_DIR_ENV",
    "resolve_executor",
    "make_executor",
]
