"""Queue worker: drain a spool directory of cells::

    python -m repro.exec.worker --queue-dir .repro_queue

Launch as many as you like, on any machine sharing the filesystem —
each loops claim → execute → push-result until the queue coordinator
writes a ``STOP`` file (or ``--max-idle`` seconds pass with nothing to
claim, or ``--once`` after a single cell).  The spool protocol and the
lease/heartbeat/straggler semantics live in :mod:`repro.exec.queue`;
the experiment cells a coordinator publishes resolve their own bodies
by dotted path, so a worker needs nothing but this repository on its
``PYTHONPATH``.

A heartbeat file (pid, current cell key) is renewed every poll interval
— a background thread keeps renewing *during* a long cell, so a busy
worker is never mistaken for a dead one.  Results are pushed into the
coordinator's :class:`~repro.results.ResultStore` bus (location read
from the spool's ``QUEUE.json``); pushes are atomic and idempotent, so
a speculative duplicate attempt at worst overwrites an entry with the
identical bytes (first-result-wins).  A cell body that raises writes a
failure marker with the traceback instead — cells are deterministic,
so one failure is definitive and the coordinator stops waiting.
"""

from __future__ import annotations

import argparse
import logging
import os
import threading
import time
import traceback
from pathlib import Path
from typing import List, Optional

from ..results.store import ResultStore
from .base import execute_cell_timed
from .queue import (
    STOP_NAME,
    Task,
    claim,
    ensure_layout,
    read_config,
    worker_id,
    write_failure,
    write_heartbeat,
)

__all__ = ["run_worker", "main"]

_log = logging.getLogger("repro.exec.worker")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class _HeartbeatThread(threading.Thread):
    """Renew the worker heartbeat every ``interval`` while a cell runs."""

    def __init__(
        self, root: Path, worker: str, current: Optional[str], interval: float,
        seq_start: int,
    ) -> None:
        super().__init__(daemon=True)
        self.root = root
        self.worker = worker
        self.current = current
        self.interval = interval
        self.seq = seq_start
        # NB: not ``self._stop`` — that would shadow Thread._stop(),
        # which Thread.join() invokes internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            self.seq += 1
            try:
                write_heartbeat(self.root, self.worker, self.current, self.seq)
            except OSError:
                pass  # transient FS trouble; the next renewal retries

    def stop(self) -> int:
        self._halt.set()
        self.join(timeout=5.0)
        return self.seq


def _open_bus(root: Path, store_dir: Optional[str], wait_s: float = 10.0) -> ResultStore:
    """The result bus: ``--store-dir`` or the coordinator's ``QUEUE.json``.

    A worker may legitimately start before any coordinator has written
    the config — wait briefly, then fall back to the spool-local
    default the coordinator would also pick.
    """
    if store_dir:
        return ResultStore(store_dir)
    deadline = time.monotonic() + wait_s
    while True:
        config = read_config(root)
        if config and config.get("store"):
            return ResultStore(config["store"])
        if time.monotonic() >= deadline:
            return ResultStore(root / "store")
        time.sleep(0.2)


def _run_task(root: Path, bus: ResultStore, worker: str, active_path: Path,
              task: Task, poll_interval_s: float, seq: int) -> int:
    """Execute one claimed task; returns the updated heartbeat seq."""
    write_heartbeat(root, worker, current=task.key, seq=seq)
    if bus.contains(task.key):
        # Another attempt already won (speculation / reclaim race):
        # drop the claim without burning the simulation time.
        active_path.unlink(missing_ok=True)
        return seq + 1
    beat = _HeartbeatThread(root, worker, task.key, poll_interval_s, seq)
    beat.start()
    try:
        result, wall_ms = execute_cell_timed(task.cell)
    except BaseException as error:
        write_failure(root, task.key, task.attempt, worker, error,
                      traceback.format_exc())
        _log.error("cell %s… attempt %d failed: %s",
                   task.key[:12], task.attempt, error)
    else:
        if not bus.contains(task.key):  # first-result-wins (advisory;
            bus.put(task.cell, result.value, wall_ms=wall_ms)  # puts are atomic)
    finally:
        seq = beat.stop() + 1
        active_path.unlink(missing_ok=True)
        write_heartbeat(root, worker, current=None, seq=seq)
    return seq


def run_worker(
    queue_dir: str,
    worker: Optional[str] = None,
    poll_interval_s: float = 0.5,
    max_idle_s: Optional[float] = None,
    store_dir: Optional[str] = None,
    once: bool = False,
    parent_pid: Optional[int] = None,
) -> int:
    """The worker loop (importable for in-process tests).

    Exits 0 on ``STOP``/``--max-idle``/``--once``/parent death; the
    number of cells executed is logged.  See the module docstring.
    """
    root = Path(queue_dir)
    ensure_layout(root)
    me = worker_id(worker)
    bus = _open_bus(root, store_dir)
    _log.info("worker %s draining %s (bus %s)", me, root, bus.root)
    seq = 0
    executed = 0
    write_heartbeat(root, me, current=None, seq=seq)
    idle_since = time.monotonic()
    try:
        while True:
            if (root / STOP_NAME).exists():
                _log.info("worker %s: STOP sentinel; exiting", me)
                break
            if parent_pid is not None and not _pid_alive(parent_pid):
                _log.info("worker %s: coordinator %d gone; exiting", me, parent_pid)
                break
            claimed = claim(root, me)
            if claimed is None:
                if (
                    max_idle_s is not None
                    and time.monotonic() - idle_since > max_idle_s
                ):
                    _log.info("worker %s: idle > %.1fs; exiting", me, max_idle_s)
                    break
                seq += 1
                write_heartbeat(root, me, current=None, seq=seq)
                time.sleep(poll_interval_s)
                continue
            active_path, task = claimed
            seq = _run_task(root, bus, me, active_path, task, poll_interval_s, seq)
            executed += 1
            idle_since = time.monotonic()
            if once:
                break
    finally:
        # A clean exit retires the heartbeat; a killed worker leaves a
        # stale one behind — exactly the signal lease expiry needs.
        (root / "heartbeats" / f"{me}.json").unlink(missing_ok=True)
    _log.info("worker %s: executed %d cell(s)", me, executed)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--queue-dir", required=True, metavar="PATH",
                        help="the spool directory to drain")
    parser.add_argument("--id", default=None, metavar="NAME",
                        help="worker identity (default: host-pid)")
    parser.add_argument("--poll-interval", type=float, default=0.5, metavar="S",
                        help="claim/heartbeat cadence in seconds (default 0.5)")
    parser.add_argument("--max-idle", type=float, default=None, metavar="S",
                        help="exit after this many seconds with nothing to claim")
    parser.add_argument("--store-dir", default=None, metavar="PATH",
                        help="result-bus store (default: the coordinator's "
                        "QUEUE.json, falling back to QUEUE_DIR/store)")
    parser.add_argument("--once", action="store_true",
                        help="exit after executing a single cell")
    parser.add_argument("--parent-pid", type=int, default=None, metavar="PID",
                        help="exit when this process disappears")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    return run_worker(
        args.queue_dir,
        worker=args.id,
        poll_interval_s=args.poll_interval,
        max_idle_s=args.max_idle,
        store_dir=args.store_dir,
        once=args.once,
        parent_pid=args.parent_pid,
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
