"""The fault injector: turns a :class:`FaultSchedule` into simulator events.

The injector owns the *ground truth* of what is broken at any instant:

* crashed servers — marked down on the :class:`~repro.sim.cluster.Server`
  (``crash()``), their mailbox detached from the network, and recorded in
  the shared :class:`NetworkFaults` filter so traffic involving them
  fails;
* active partitions and degraded links — windows registered/removed on
  the filter at their scheduled boundaries.

With an **empty schedule nothing is installed at all** — ``Network.fault``
stays ``None`` and every trace is byte-identical to a fault-free run
(this is pinned by the determinism tests).
"""

from __future__ import annotations

from random import Random
from typing import Dict, List, Optional, Set, Tuple

from ..sim.cluster import Cluster
from ..sim.kernel import Simulator
from ..sim.network import DeliveryError, Network
from ..sim.rng import RngRegistry
from .schedule import FaultSchedule, LinkFault, NetworkPartition, ServerCrash

__all__ = ["NetworkFaults", "FaultInjector"]


class NetworkFaults:
    """The live fault state consulted by :class:`repro.sim.network.Network`.

    Implements the duck-typed filter protocol documented in
    :mod:`repro.sim.network`: ``hop_penalty_ms`` for process-style hops
    (raises :class:`DeliveryError` when unreachable), and
    ``message_penalty_ms`` for fire-and-forget messages (returns ``None``
    to drop).  Loss draws come from a dedicated RNG stream, so lossy
    links never perturb workload randomness.
    """

    def __init__(self, rng: Optional[Random] = None) -> None:
        self.down: Set[str] = set()
        self._partitions: Dict[int, Tuple[frozenset, frozenset]] = {}
        self._links: Dict[int, LinkFault] = {}
        self._rng = rng
        self.hops_refused = 0
        self.messages_lost = 0

    # -- state transitions (driven by the injector) --------------------
    def mark_down(self, name: str) -> None:
        """Record ``name`` as crashed."""
        self.down.add(name)

    def mark_up(self, name: str) -> None:
        """Record ``name`` as back up."""
        self.down.discard(name)

    def add_partition(self, key: int, group_a, group_b) -> None:
        """Activate a partition window."""
        self._partitions[key] = (frozenset(group_a), frozenset(group_b))

    def remove_partition(self, key: int) -> None:
        """Deactivate a partition window."""
        self._partitions.pop(key, None)

    def add_link_fault(self, key: int, fault: LinkFault) -> None:
        """Activate a degraded-link window."""
        self._links[key] = fault

    def remove_link_fault(self, key: int) -> None:
        """Deactivate a degraded-link window."""
        self._links.pop(key, None)

    # -- the filter protocol -------------------------------------------
    def _partitioned(self, src: str, dst: str) -> bool:
        for group_a, group_b in self._partitions.values():
            if (src in group_a and dst in group_b) or (
                src in group_b and dst in group_a
            ):
                return True
        return False

    def _link_matches(self, fault: LinkFault, src: str, dst: str) -> bool:
        if fault.src == src and fault.dst == dst:
            return True
        return fault.bidirectional and fault.src == dst and fault.dst == src

    def hop_penalty_ms(self, src: str, dst: str) -> float:
        """Extra latency for a process hop; raises when unreachable."""
        down = self.down
        if src in down or dst in down:
            self.hops_refused += 1
            victim = dst if dst in down else src
            raise DeliveryError(f"endpoint {victim!r} is down")
        if self._partitions and self._partitioned(src, dst):
            self.hops_refused += 1
            raise DeliveryError(f"network partition between {src!r} and {dst!r}")
        extra = 0.0
        if self._links:
            for fault in self._links.values():
                if self._link_matches(fault, src, dst):
                    extra += fault.extra_latency_ms
        return extra

    def message_penalty_ms(self, src: str, dst: str) -> Optional[float]:
        """Extra latency for a message, or ``None`` when it is lost."""
        down = self.down
        if src in down or dst in down:
            self.messages_lost += 1
            return None
        if self._partitions and self._partitioned(src, dst):
            self.messages_lost += 1
            return None
        extra = 0.0
        if self._links:
            for fault in self._links.values():
                if self._link_matches(fault, src, dst):
                    if fault.drop_rate > 0.0 and self._rng is not None:
                        if self._rng.random() < fault.drop_rate:
                            self.messages_lost += 1
                            return None
                    extra += fault.extra_latency_ms
        return extra


class FaultInjector:
    """Schedules a :class:`FaultSchedule`'s events on the simulator clock.

    Args: the testbed's ``sim``/``network``/``cluster``, the ``schedule``
    to apply, and an optional ``rng`` registry for faults that draw
    randomness (loss).  Call :meth:`start` once before ``sim.run``;
    applied transitions land in :attr:`log`.  Used by ``fig10``/``fig11``
    — see docs/EXPERIMENTS.md and docs/ARCHITECTURE.md § layer map.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        cluster: Cluster,
        schedule: FaultSchedule,
        rng: Optional[RngRegistry] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.cluster = cluster
        self.schedule = schedule
        self.rng = rng
        self.state: Optional[NetworkFaults] = None
        #: ``(time_ms, description)`` log of every applied transition.
        self.log: List[Tuple[float, str]] = []
        self.started = False

    def start(self) -> None:
        """Install the fault filter and schedule every fault event.

        A no-op for an empty schedule: the network keeps ``fault=None``
        and the run stays byte-identical to a fault-free one.
        """
        if self.started:
            return
        self.started = True
        if self.schedule.empty:
            return
        self.schedule.validate()
        if self.rng is None and any(
            isinstance(fault, LinkFault) and fault.drop_rate > 0.0
            for fault in self.schedule
        ):
            raise ValueError(
                "schedule contains lossy LinkFaults: pass an RngRegistry "
                "(rng=...) so drop draws are seeded, not silently skipped"
            )
        drop_stream = self.rng.stream("faults/drop") if self.rng is not None else None
        self.state = NetworkFaults(drop_stream)
        self.network.fault = self.state
        now = self.sim.now
        counter = 0
        for fault in self.schedule.ordered():
            counter += 1
            delay = max(0.0, fault.at_ms - now)
            if isinstance(fault, ServerCrash):
                self.sim.schedule(delay, self._apply_crash, fault)
            elif isinstance(fault, NetworkPartition):
                self.sim.schedule(delay, self._apply_partition, counter, fault)
            else:
                self.sim.schedule(delay, self._apply_link_fault, counter, fault)

    # -- appliers -------------------------------------------------------
    def _note(self, text: str) -> None:
        self.log.append((self.sim.now, text))

    def _apply_crash(self, fault: ServerCrash) -> None:
        server = self.cluster.servers.get(fault.server)
        if server is None or not server.alive:
            self._note(f"crash of {fault.server} skipped (absent or already down)")
            return
        server.crash()
        self.network.detach(fault.server)
        self.state.mark_down(fault.server)
        self._note(f"server {fault.server} crashed")
        if fault.restart_after_ms is not None:
            self.sim.schedule(fault.restart_after_ms, self._apply_restart, fault.server)

    def _apply_restart(self, name: str) -> None:
        server = self.cluster.servers.get(name)
        if server is None or not server.crashed:
            self._note(f"restart of {name} skipped (absent or not crashed)")
            return
        server.restart()
        self.network.reattach(name)
        self.state.mark_up(name)
        self._note(f"server {name} restarted")

    def _apply_partition(self, key: int, fault: NetworkPartition) -> None:
        self.state.add_partition(key, fault.group_a, fault.group_b)
        self._note(
            f"partition {sorted(fault.group_a)} | {sorted(fault.group_b)} "
            f"for {fault.duration_ms:.0f} ms"
        )
        self.sim.schedule(fault.duration_ms, self._heal_partition, key)

    def _heal_partition(self, key: int) -> None:
        self.state.remove_partition(key)
        self._note("partition healed")

    def _apply_link_fault(self, key: int, fault: LinkFault) -> None:
        self.state.add_link_fault(key, fault)
        self._note(
            f"link {fault.src}->{fault.dst} degraded "
            f"(+{fault.extra_latency_ms:.2f} ms, drop {fault.drop_rate:.0%}) "
            f"for {fault.duration_ms:.0f} ms"
        )
        self.sim.schedule(fault.duration_ms, self._heal_link_fault, key)

    def _heal_link_fault(self, key: int) -> None:
        self.state.remove_link_fault(key)
        self._note("link healed")
