"""Heartbeat/lease failure detection over the simulated network.

Every watched server runs a heartbeat sender: while the server is up it
sends a small message to the detector endpoint each interval — **real
network traffic**, so partitions, lossy links and the crash itself all
affect detection exactly as they would a production detector (including
false positives when only the detector's links are cut).

The detector grants each server a lease; a monitor loop declares a
server *suspected* once its lease expires without a heartbeat, firing
the registered failure callbacks (the eManager's recovery hook).  A
heartbeat from a suspected server (a restart, or a healed partition)
clears the suspicion and fires the recovery callbacks.

Detection latency — declared-at minus the server's actual crash time —
is recorded per detection, the subsystem's headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Set

from ..sim.cluster import Cluster, Server
from ..sim.network import Network
from ..sim.kernel import Simulator

__all__ = ["Detection", "FailureDetector"]


@dataclass(frozen=True)
class Detection:
    """One declared failure: who, when declared, when actually crashed."""

    server: str
    detected_at_ms: float
    crashed_at_ms: Optional[float]  # None: a false positive (never crashed)

    @property
    def latency_ms(self) -> Optional[float]:
        """Crash-to-declaration delay (None for false positives)."""
        if self.crashed_at_ms is None:
            return None
        return self.detected_at_ms - self.crashed_at_ms


class FailureDetector:
    """Lease-based failure detector endpoint on the network fabric.

    Servers heartbeat every ``heartbeat_interval_ms`` over the *real*
    simulated network; a server whose lease (``lease_ms``) expires is
    declared dead on the next check, recorded as a
    :class:`Detection` (with crash-to-declaration latency) and pushed to
    subscribers — the eManager's recovery hook and client location-cache
    invalidation.  Call :meth:`start` after construction and
    :meth:`stop` when the run ends.  See docs/EXPERIMENTS.md § fig10 and
    docs/ARCHITECTURE.md § layer map.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        cluster: Cluster,
        name: str = "~fdetector",
        heartbeat_interval_ms: float = 200.0,
        lease_ms: float = 650.0,
        check_interval_ms: float = 100.0,
        heartbeat_bytes: int = 64,
    ) -> None:
        if lease_ms <= heartbeat_interval_ms:
            raise ValueError("lease must outlast the heartbeat interval")
        self.sim = sim
        self.network = network
        self.cluster = cluster
        self.name = name
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.lease_ms = lease_ms
        self.check_interval_ms = check_interval_ms
        self.heartbeat_bytes = heartbeat_bytes
        self.mailbox = (
            network.mailbox(name)
            if network.is_registered(name)
            else network.register(name)
        )
        self.running = False
        self.suspected: Set[str] = set()
        self.detections: List[Detection] = []
        self.heartbeats_received = 0
        self.redeclarations = 0
        #: Fencing epoch carried by each server's latest heartbeat (the
        #: epoch the sender *believes* it holds).  Recovery hooks compare
        #: this against the fencing table to spot a stale owner that
        #: came back after being fenced.
        self.last_epochs: Dict[str, int] = {}
        self._last_seen: Dict[str, float] = {}
        self._declared_at: Dict[str, float] = {}
        self._watched: Set[str] = set()
        # Bumped on every start(): loops spawned by an earlier start die
        # at their next tick, so stop()/start() cycles never leave stale
        # senders or duplicate monitors behind.
        self._generation = 0
        self._on_failure: List[Callable[[str], None]] = []
        self._on_recovery: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def on_failure(self, callback: Callable[[str], None]) -> None:
        """Call ``callback(server_name)`` when a server is declared dead."""
        self._on_failure.append(callback)

    def on_recovery(self, callback: Callable[[str], None]) -> None:
        """Call ``callback(server_name)`` when a suspect heartbeats again."""
        self._on_recovery.append(callback)

    def start(self) -> None:
        """Watch every booted cluster server and begin monitoring.

        Membership stays live: servers provisioned later are watched
        once booted, decommissioned ones are forgotten.  The heartbeat
        senders and the monitor loop run until :meth:`stop`; a bare
        ``sim.run()`` (no horizon) would therefore never terminate while
        a detector is running.
        """
        if self.running:
            return
        self.running = True
        self._generation += 1
        # Fresh watch state: leases restart now, suspicions are dropped
        # (a restarted detector has no knowledge), and watch() respawns
        # a sender for every current server.
        self._watched.clear()
        self._last_seen.clear()
        self.last_epochs.clear()
        self.suspected.clear()
        self._declared_at.clear()
        for name in sorted(self.cluster.servers):
            server = self.cluster.servers[name]
            if server.alive:  # still-booting servers are watched on boot
                self.watch(server)
        self.sim.process(self._receiver(self._generation), name="fdetector-recv")
        self.sim.process(self._monitor(self._generation), name="fdetector-monitor")

    def stop(self) -> None:
        """Stop all detector loops at their next tick."""
        self.running = False

    def watch(self, server: Server) -> None:
        """Start heartbeating ``server`` (lease granted as of now)."""
        if server.name in self._watched:
            return
        self._watched.add(server.name)
        self._last_seen[server.name] = self.sim.now
        self.sim.process(
            self._sender(server, self._generation), name=f"hb:{server.name}"
        )

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def _sender(self, server: Server, generation: int) -> Generator:
        interval = float(self.heartbeat_interval_ms)
        # The loop dies with the detector (stop or restart) or with the
        # server's cluster membership (decommissioned servers stop
        # heartbeating for good).
        while (
            self.running
            and generation == self._generation
            and server.name in self.cluster.servers
        ):
            if server.alive:
                # The heartbeat carries the sender's fencing epoch: a
                # fenced server that comes back announces its (stale)
                # belief, and the recovery hook re-admits it at the
                # current epoch instead of letting it race the new owner.
                self.network.send(
                    server.name,
                    self.name,
                    ("hb", server.name, server.fencing_epoch),
                    size_bytes=self.heartbeat_bytes,
                )
            yield interval

    def _receiver(self, generation: int) -> Generator:
        while self.running and generation == self._generation:
            message = yield self.mailbox.get()
            payload = message.payload
            if not (isinstance(payload, tuple) and payload and payload[0] == "hb"):
                continue
            source = payload[1]
            self.heartbeats_received += 1
            self._last_seen[source] = self.sim.now
            if len(payload) > 2:
                self.last_epochs[source] = payload[2]
            if source in self.suspected:
                self.suspected.discard(source)
                self._declared_at.pop(source, None)
                for callback in self._on_recovery:
                    callback(source)

    def _monitor(self, generation: int) -> Generator:
        interval = float(self.check_interval_ms)
        while self.running and generation == self._generation:
            yield interval
            # Track cluster membership: servers provisioned after
            # start() are watched once booted (their lease starts then),
            # and decommissioned servers are forgotten — scale-in is not
            # a failure.
            servers = self.cluster.servers
            for name in sorted(servers.keys() - self._watched):
                if servers[name].alive:
                    self.watch(servers[name])
            for name in sorted(self._watched - servers.keys()):
                self._watched.discard(name)
                self._last_seen.pop(name, None)
                self.last_epochs.pop(name, None)
                self.suspected.discard(name)
                self._declared_at.pop(name, None)
            now = self.sim.now
            lease = self.lease_ms
            for name in sorted(self._watched):
                if name in self.suspected:
                    # A suspect that stays silent is re-declared every
                    # lease: a server that truly crashes *while already
                    # suspected* (a partition false-positive that turned
                    # real) would otherwise never fire the recovery hook
                    # again.  Re-declarations are idempotent downstream
                    # (nothing lost -> nothing restored) and are counted
                    # separately, not as fresh detections.
                    if now - self._declared_at.get(name, now) >= lease:
                        self._declared_at[name] = now
                        self.redeclarations += 1
                        for callback in self._on_failure:
                            callback(name)
                    continue
                if now - self._last_seen[name] <= lease:
                    continue
                self.suspected.add(name)
                self._declared_at[name] = now
                server = self.cluster.servers.get(name)
                crashed_at = server.crashed_at_ms if server is not None else None
                self.detections.append(Detection(name, now, crashed_at))
                for callback in self._on_failure:
                    callback(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_suspected(self, name: str) -> bool:
        """Whether ``name`` is currently declared dead."""
        return name in self.suspected

    def mean_detection_latency_ms(self) -> float:
        """Mean crash-to-declaration latency over true detections."""
        values = [d.latency_ms for d in self.detections if d.latency_ms is not None]
        return sum(values) / len(values) if values else 0.0
