"""Declarative fault schedules: what breaks, when, for how long.

A :class:`FaultSchedule` is a plain list of fault events pinned to the
simulator clock — the experiment equivalent of a chaos-engineering
scenario file.  Three fault kinds cover the availability studies:

* :class:`ServerCrash` — fail-stop a server (optionally restarting it
  after a delay); the paper's §5.3 recovery story is driven by these;
* :class:`NetworkPartition` — sever all traffic between two endpoint
  groups for a window;
* :class:`LinkFault` — degrade one link (extra latency and/or message
  loss) for a window.

Schedules are data, not behaviour: :class:`repro.faults.FaultInjector`
turns one into scheduled simulator callbacks.  :func:`random_churn`
generates crash/restart churn deterministically from a named
:class:`repro.sim.rng.RngRegistry` stream, so adding churn to an
experiment never perturbs its other random draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..sim.rng import RngRegistry

__all__ = [
    "ServerCrash",
    "NetworkPartition",
    "LinkFault",
    "FaultEvent",
    "FaultSchedule",
    "random_churn",
]


@dataclass(frozen=True)
class ServerCrash:
    """Fail-stop ``server`` at ``at_ms``; restart after ``restart_after_ms``.

    ``restart_after_ms=None`` leaves the server down for the rest of the
    run (recovery then happens purely by re-placement).

    Modeling note: by default, state loss is *realized* by the recovery
    rollback, not at crash time — a restart faster than the detector's
    declaration (lease + check interval) then behaves like an OS blip
    whose memory survived, not a true fail-stop.  With the eManager's
    ``crash_drops_state`` knob on, crashes are honest: the volatile
    state of every hosted context is dropped *at crash time* (via the
    server's ``on_crash`` hooks) and a restart rehydrates from the last
    checkpoint instead of resurrecting pre-crash memory, however fast
    it comes back.  Either way, keep ``restart_after_ms`` above the
    detection latency when the experiment is about recovery
    (:func:`random_churn`'s default 2–8 s restarts clear the default
    650 ms lease comfortably).
    """

    at_ms: float
    server: str
    restart_after_ms: Optional[float] = None


@dataclass(frozen=True)
class NetworkPartition:
    """No traffic between ``group_a`` and ``group_b`` for ``duration_ms``.

    Process-style hops across the cut raise
    :class:`~repro.sim.network.DeliveryError`; fire-and-forget messages
    (heartbeats) are silently dropped.  Traffic within each group is
    unaffected.
    """

    at_ms: float
    duration_ms: float
    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]


@dataclass(frozen=True)
class LinkFault:
    """Degrade the ``src``→``dst`` link for ``duration_ms``.

    ``extra_latency_ms`` is added to every transmission on the link;
    ``drop_rate`` is the probability a fire-and-forget message is lost
    (process hops never drop — protocol channels are TCP-like, loss
    surfaces as the latency penalty).  ``bidirectional`` applies the
    fault to both directions.
    """

    at_ms: float
    duration_ms: float
    src: str
    dst: str
    extra_latency_ms: float = 0.0
    drop_rate: float = 0.0
    bidirectional: bool = True


FaultEvent = Union[ServerCrash, NetworkPartition, LinkFault]


@dataclass
class FaultSchedule:
    """An ordered plan of fault events for one run.

    Data, not behaviour: build one (or generate it with
    :func:`random_churn`), hand it to a
    :class:`~repro.faults.FaultInjector`, call ``injector.start()``.
    An empty schedule installs nothing and keeps traces byte-identical
    to a fault-free run.  See docs/ARCHITECTURE.md § layer map.
    """

    faults: List[FaultEvent] = field(default_factory=list)

    def add(self, fault: FaultEvent) -> "FaultSchedule":
        """Append one fault event; returns self for chaining."""
        self.faults.append(fault)
        return self

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing (the happy path)."""
        return not self.faults

    def ordered(self) -> List[FaultEvent]:
        """Fault events sorted by injection time (stable)."""
        return sorted(self.faults, key=lambda f: f.at_ms)

    def validate(self) -> None:
        """Reject schedules the injector cannot realize."""
        for fault in self.faults:
            if fault.at_ms < 0:
                raise ValueError(f"fault scheduled in the past: {fault}")
            if isinstance(fault, ServerCrash):
                if fault.restart_after_ms is not None and fault.restart_after_ms <= 0:
                    raise ValueError(f"non-positive restart delay: {fault}")
            elif isinstance(fault, NetworkPartition):
                if fault.duration_ms <= 0:
                    raise ValueError(f"non-positive partition window: {fault}")
                if not fault.group_a or not fault.group_b:
                    raise ValueError(f"partition needs two non-empty groups: {fault}")
                if set(fault.group_a) & set(fault.group_b):
                    raise ValueError(f"partition groups overlap: {fault}")
            elif isinstance(fault, LinkFault):
                if fault.duration_ms <= 0:
                    raise ValueError(f"non-positive link-fault window: {fault}")
                if not 0.0 <= fault.drop_rate <= 1.0:
                    raise ValueError(f"drop_rate outside [0, 1]: {fault}")
                if fault.extra_latency_ms < 0:
                    raise ValueError(f"negative latency penalty: {fault}")
            else:
                raise TypeError(f"unknown fault event {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.faults)


def random_churn(
    servers: Sequence[str],
    duration_ms: float,
    rng: RngRegistry,
    mean_time_between_crashes_ms: float = 20_000.0,
    restart_delay_ms: Tuple[float, float] = (2_000.0, 8_000.0),
    start_ms: float = 1_000.0,
) -> FaultSchedule:
    """Generate deterministic crash/restart churn over ``servers``.

    Crash arrivals are exponential with the given mean; the victim is
    uniform; restart delays are uniform in ``restart_delay_ms``.  At most
    one server is down at a time (the next crash is drawn after the
    previous restart), so the cluster never loses quorum entirely.  All
    draws come from the registry's ``"faults/churn"`` stream — existing
    experiment randomness is untouched.  Returns the generated
    :class:`FaultSchedule`.  Drives ``fig11`` — see docs/EXPERIMENTS.md
    § fig11.
    """
    if not servers:
        raise ValueError("random_churn needs at least one server name")
    stream = rng.stream("faults/churn")
    schedule = FaultSchedule()
    low, high = restart_delay_ms
    now = start_ms
    while True:
        now += stream.expovariate(1.0 / mean_time_between_crashes_ms)
        if now >= duration_ms:
            break
        victim = servers[stream.randrange(len(servers))]
        restart_after = stream.uniform(low, high)
        schedule.add(ServerCrash(now, victim, restart_after_ms=restart_after))
        now += restart_after
    return schedule
