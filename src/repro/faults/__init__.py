"""Fault injection and failure detection (the §5.3 dependability story).

This subpackage is the repository's first whose job is to *break* the
others: deterministic fault schedules (:mod:`repro.faults.schedule`),
an injector applying them on the simulator clock
(:mod:`repro.faults.injector`), and a heartbeat/lease failure detector
(:mod:`repro.faults.detector`).  Crash *recovery* — re-placing lost
contexts from their last cloud-storage checkpoint — lives with the
eManager (:meth:`repro.elasticity.EManager.enable_fault_tolerance`),
which the paper makes responsible for the context mapping.
"""

from .detector import Detection, FailureDetector
from .injector import FaultInjector, NetworkFaults
from .schedule import (
    FaultEvent,
    FaultSchedule,
    LinkFault,
    NetworkPartition,
    ServerCrash,
    random_churn,
)

__all__ = [
    "Detection",
    "FailureDetector",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkFault",
    "NetworkFaults",
    "NetworkPartition",
    "ServerCrash",
    "random_churn",
]
