"""Applications: the multiplayer game and the TPC-C benchmark."""

from .game import Building, GameApp, GameConfig, Item, Player, Room, build_game

__all__ = [
    "Building",
    "GameApp",
    "GameConfig",
    "Item",
    "Player",
    "Room",
    "build_game",
]
