"""TPC-C workload sampler for every measured system.

Entry points per variant (why they differ is the experiment):

===============  =====================================================
system           transaction entry
===============  =====================================================
``aeon``         NewOrder/OrderStatus on the Customer (sequenced at the
                 District dominator — multi-ownership), Payment and
                 StockLevel on the Warehouse, Delivery on the District.
``aeon_so``      identical code, Orders single-owned: Customer events
                 sequence at themselves, the Warehouse binds instead.
``eventwave``    the ``aeon_so`` wiring on the EventWave runtime (plus
                 the root total order).
``orleans``      every transaction enters the Warehouse grain, which
                 orchestrates the tree synchronously under its turn —
                 the strictly serializable but saturated variant.
``orleans_star`` direct per-grain calls without cross-grain atomicity
                 (the erroneous best-case variant).
===============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import List, Tuple

from ...core.events import CallSpec
from .loader import TpccDeployment

__all__ = ["TpccWorkload"]


@dataclass
class TpccWorkload:
    """Samples TPC-C transactions against a deployment."""

    deployment: TpccDeployment
    variant: str

    def sample_op(self, rng: Random) -> Tuple[CallSpec, str]:
        """Draw one transaction ``(spec, tag)`` from the standard mix."""
        config = self.deployment.config
        roll = rng.random()
        if roll < config.p_new_order:
            return self._new_order(rng), "new_order"
        roll -= config.p_new_order
        if roll < config.p_payment:
            return self._payment(rng), "payment"
        roll -= config.p_payment
        if roll < config.p_order_status:
            return self._order_status(rng), "order_status"
        roll -= config.p_order_status
        if roll < config.p_delivery:
            return self._delivery(rng), "delivery"
        return self._stock_level(rng), "stock_level"

    # ------------------------------------------------------------------
    # Row pickers
    # ------------------------------------------------------------------
    def _pick(self, rng: Random):
        d_index = rng.randrange(len(self.deployment.districts))
        district = self.deployment.districts[d_index]
        customers = self.deployment.customers[d_index]
        customer = customers[rng.randrange(len(customers))]
        return d_index, district, customer

    def _lines(self, rng: Random) -> List[Tuple[int, int]]:
        config = self.deployment.config
        n_lines = rng.randint(3, config.max_lines_per_order)
        return [
            (rng.randrange(config.n_items), rng.randint(1, 10))
            for _ in range(n_lines)
        ]

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def _new_order(self, rng: Random) -> CallSpec:
        _d, district, customer = self._pick(rng)
        lines = self._lines(rng)
        warehouse = self.deployment.warehouse
        if self.variant == "orleans":
            d_index = self.deployment.districts.index(district)
            return warehouse.tree_new_order(district, customer, d_index, lines)
        if self.variant == "orleans_star":
            return customer.unsafe_new_order(lines, warehouse, district)
        co_owner = district if self.deployment.multi_ownership else None
        return customer.new_order(lines, warehouse, co_owner)

    def _payment(self, rng: Random) -> CallSpec:
        _d, district, customer = self._pick(rng)
        amount = rng.randint(1, 500)
        warehouse = self.deployment.warehouse
        if self.variant == "orleans":
            return warehouse.tree_payment(district, customer, amount)
        if self.variant == "orleans_star":
            return customer.unsafe_payment(amount, warehouse, district)
        return warehouse.payment(district, customer, amount)

    def _order_status(self, rng: Random) -> CallSpec:
        _d, _district, customer = self._pick(rng)
        if self.variant == "orleans":
            return self.deployment.warehouse.tree_order_status(customer)
        return customer.order_status()

    def _delivery(self, rng: Random) -> CallSpec:
        _d, district, customer = self._pick(rng)
        carrier = rng.randint(1, 10)
        if self.variant == "orleans":
            return self.deployment.warehouse.tree_delivery(district, carrier)
        if self.variant == "orleans_star":
            # Direct per-customer delivery: going through the District
            # grain would create a synchronous call cycle (deadlock).
            return customer.deliver_oldest(carrier)
        multi = self.deployment.multi_ownership
        return district.deliver(carrier, multi)

    def _stock_level(self, rng: Random) -> CallSpec:
        _d, district, _customer = self._pick(rng)
        threshold = rng.randint(10, 20)
        return self.deployment.warehouse.stock_level(district, threshold)
