"""TPC-C deployment builder: one District per server (§6.1.2).

The paper partitions TPC-C by district — "we also partition TPC-C by
district similar to Rococo" — precisely because warehouse-partitioning
leaves <15% distributed transactions and does not stress the protocol.
The Warehouse context (with its folded stock) lives on the first server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...core.context import ContextRef
from ...core.runtime import RuntimeBase
from ...sim.cluster import Server
from .schema import Customer, District, Order, Warehouse

__all__ = ["TpccConfig", "TpccDeployment", "build_tpcc"]


@dataclass
class TpccConfig:
    """Scaled-down TPC-C sizing and mix (standard weights by default)."""

    districts: int = 4
    customers_per_district: int = 20
    n_items: int = 200
    max_lines_per_order: int = 8
    #: Standard TPC-C transaction mix.
    p_new_order: float = 0.45
    p_payment: float = 0.43
    p_order_status: float = 0.04
    p_delivery: float = 0.04
    p_stock_level: float = 0.04

    def validate(self) -> None:
        """Sanity-check sizing and mix."""
        total = (
            self.p_new_order
            + self.p_payment
            + self.p_order_status
            + self.p_delivery
            + self.p_stock_level
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"transaction mix must sum to 1.0, got {total}")
        if self.districts < 1 or self.customers_per_district < 1:
            raise ValueError("need at least one district and one customer")


@dataclass
class TpccDeployment:
    """Refs to the built TPC-C context graph."""

    runtime: RuntimeBase
    config: TpccConfig
    multi_ownership: bool
    warehouse: ContextRef
    districts: List[ContextRef] = field(default_factory=list)
    customers: Dict[int, List[ContextRef]] = field(default_factory=dict)

    def consistency_probe(self) -> Dict[str, int]:
        """Cross-context invariant inputs (used by tests).

        Returns total payments applied at the warehouse vs the sum over
        districts vs the sum over customers — equal in a strictly
        serializable system once quiescent.
        """
        runtime = self.runtime
        wh = runtime.instance_of(self.warehouse)
        district_total = sum(
            runtime.instance_of(d).d_ytd for d in self.districts
        )
        customer_total = 0
        for refs in self.customers.values():
            for customer in refs:
                customer_total += runtime.instance_of(customer).ytd_payment
        return {
            "warehouse_ytd": wh.w_ytd,
            "district_ytd": district_total,
            "customer_ytd": customer_total,
        }


def build_tpcc(
    runtime: RuntimeBase,
    config: TpccConfig,
    multi_ownership: bool,
    servers: Optional[Sequence[Server]] = None,
    colocate: bool = True,
) -> TpccDeployment:
    """Create the Warehouse/District/Customer graph on ``runtime``.

    ``multi_ownership`` controls only whether future Orders get the
    District as a second owner (the Customer wiring is identical, as the
    paper notes the programming effort is).
    """
    config.validate()
    pool = list(servers or runtime.cluster.alive_servers().values())
    if not pool:
        raise ValueError("no servers available for TPC-C")

    def host(index: int) -> Optional[Server]:
        return pool[index % len(pool)] if colocate else None

    warehouse = runtime.create_context(
        Warehouse, server=host(0), name="warehouse", args=(1, config.n_items)
    )
    deployment = TpccDeployment(
        runtime=runtime,
        config=config,
        multi_ownership=multi_ownership,
        warehouse=warehouse,
    )
    wh_instance = runtime.instance_of(warehouse)
    for d_index in range(config.districts):
        district = runtime.create_context(
            District,
            owners=[warehouse],
            server=host(d_index),
            name=f"district-{d_index}",
            args=(d_index,),
        )
        wh_instance.districts.add(district)
        deployment.districts.append(district)
        district_instance = runtime.instance_of(district)
        customers: List[ContextRef] = []
        for c_index in range(config.customers_per_district):
            customer = runtime.create_context(
                Customer,
                owners=[district],
                server=host(d_index),
                name=f"customer-{d_index}-{c_index}",
                args=(c_index, d_index),
            )
            district_instance.customers.add(customer)
            customers.append(customer)
            # Initial database load: one order per customer (TPC-C's
            # populated Order table).  Establishing the Order sharing up
            # front pins dom(Customer) before any event is admitted.
            owners = [customer, district] if multi_ownership else [customer]
            order = runtime.create_context(
                Order,
                owners=owners,
                server=host(d_index),
                name=f"order-{d_index}-{c_index}-1",
                args=(1, c_index, [(c_index % config.n_items, 1)], 10),
            )
            runtime.instance_of(customer).preload_order(order)
        deployment.customers[d_index] = customers
    return deployment
