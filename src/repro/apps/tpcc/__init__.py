"""TPC-C: schema, loader and workload (§6.1.2)."""

from .loader import TpccConfig, TpccDeployment, build_tpcc
from .schema import Customer, District, Order, TpccWork, Warehouse, DEFAULT_WORK
from .workload import TpccWorkload

__all__ = [
    "Customer",
    "DEFAULT_WORK",
    "District",
    "Order",
    "TpccConfig",
    "TpccDeployment",
    "TpccWork",
    "TpccWorkload",
    "Warehouse",
    "build_tpcc",
]
