"""TPC-C contextclass schema (§6.1.2).

The paper's declarations::

    contextclass WareHouse {set<Stock> s; set<District> d;}
    contextclass District  {set<Customer> c; set<Order> o;}
    contextclass Customer  {History h; set<Order> os;}
    contextclass Order     {set<NewOrder> n; set<OrderLine> l;}

with two simplifications the paper itself makes or suggests:

* "warehouse and items form a single context" — Stock rows live inside
  the Warehouse context (a dict), they do not need independent
  elasticity;
* NewOrder/OrderLine/History rows are folded into their Order/Customer
  container contexts (§6.3: "one context plays the role of a container
  for several objects as long as these objects do not require an
  independent elasticity policy").

Ownership — the crux of the evaluation:

* **multi-ownership wiring** (``aeon``): an Order is owned by *both* its
  Customer and its District.  Consequently ``dom(Customer) = District``
  and every Customer-target event is sequenced exclusively at its
  District — the saturation §6.1.2 reports;
* **single-ownership wiring** (``aeon_so``/``eventwave``/Orleans
  variants): Orders belong to the Customer only, ``dom(Customer) =
  Customer``, and customer events run in parallel until the Warehouse
  context saturates.

Transaction entry points follow the paper's §6.1.2 narrative: Payment
enters the Warehouse and *asynchronously* continues in the District and
Customer ("once a payment transaction finishes its execution in a
Warehouse context, it calls a method in a District context
asynchronously, and releases the Warehouse"), which is what chain
release turns into pipeline parallelism.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ...core.context import ContextClass, ContextRef, Ref, RefSet, cost, readonly
from ...core.events import async_, compute, dispatch

__all__ = ["Warehouse", "District", "Customer", "Order", "TpccWork", "DEFAULT_WORK"]


class TpccWork:
    """CPU unit-work constants per transaction stage.

    TPC-C transactions are heavy relative to game ops (the paper's whole
    cluster peaks below 200 events/s); these constants set that scale.
    """

    #: Order-line validation/insert work at the Customer.
    customer_order = 18.0
    #: Stock decrement work at the Warehouse (kept short: chain release
    #: frees the Warehouse quickly — the §6.1.2 point).
    wh_stock = 1.2
    #: District's stock-summary note (the Warehouse's synchronous call
    #: into the District, which couples Warehouse hold time to District
    #: congestion).
    district_note = 0.4
    #: Payment work at the Warehouse before the asynchronous handoff.
    wh_payment = 1.0
    #: Payment work at the District before the asynchronous handoff.
    district_payment = 1.5
    #: Payment/history work at the Customer.
    customer_payment = 10.0
    #: Delivery work at the District (order lookup and carrier update).
    district_delivery = 6.0
    #: Per-order delivery work.
    order_delivery = 4.0
    #: Read-only status/stock-level probes.
    readonly_probe = 2.0


DEFAULT_WORK = TpccWork()


class Order(ContextClass):
    """One order: order lines and NewOrder marker folded in."""

    size_bytes = 8192

    def __init__(
        self, o_id: int, c_id: int, lines: Sequence[Tuple[int, int]], total: int
    ) -> None:
        self.o_id = o_id
        self.c_id = c_id
        self.lines = list(lines)
        self.total = total
        self.delivered = False
        self.carrier_id: Optional[int] = None

    @cost(4.0)
    def deliver(self, carrier_id: int) -> Tuple[int, int]:
        """Mark delivered; returns ``(total, c_id)`` for the credit."""
        self.delivered = True
        self.carrier_id = carrier_id
        return self.total, self.c_id

    @readonly
    @cost(1.0)
    def status(self) -> Dict[str, Any]:
        """Read-only order status row."""
        return {
            "o_id": self.o_id,
            "delivered": self.delivered,
            "carrier": self.carrier_id,
            "total": self.total,
            "lines": len(self.lines),
        }


class Customer(ContextClass):
    """A customer: balance, folded history, and its orders."""

    size_bytes = 16384

    orders = RefSet(Order)

    def __init__(self, c_id: int, d_id: int) -> None:
        self.c_id = c_id
        self.d_id = d_id
        self.balance = 0
        self.ytd_payment = 0
        self.payment_count = 0
        self.delivery_count = 0
        self.history: List[Tuple[float, int]] = []
        self.order_seq = 0
        self._order_refs: List[ContextRef] = []
        self._undelivered: List[ContextRef] = []

    def preload_order(self, order_ref: ContextRef) -> None:
        """Register an initial-load order (loader only, pre-run).

        TPC-C's initial database population creates orders for every
        customer; besides fidelity, this establishes the Customer/District
        sharing *before* any event runs, so dominators never flip under
        in-flight events (see DESIGN.md, "dynamic sharing rule").
        """
        self.order_seq += 1
        self._order_refs.append(order_ref)
        self._undelivered.append(order_ref)

    # ------------------------------------------------------------------
    # NewOrder (45% of the mix) — the multi- vs single-ownership pivot
    # ------------------------------------------------------------------
    def new_order(
        self,
        lines: Sequence[Tuple[int, int]],
        warehouse: ContextRef,
        district: Optional[ContextRef],
    ) -> Generator:
        """Place an order; stock is deducted by a dispatched sub-event.

        ``district`` is the co-owner ref in the multi-ownership wiring
        (None for single ownership).  The stock deduction executes as a
        follow-up event on the Warehouse after this event commits (the
        scaled-down TPC-C accepts orders unconditionally; see DESIGN.md).
        """
        yield compute(DEFAULT_WORK.customer_order)
        self.order_seq += 1
        total = sum(qty * 10 for _item, qty in lines)
        runtime = self._aeon_runtime
        owners = [self.ref] if district is None else [self.ref, district]
        order = runtime.create_context(
            Order,
            owners=owners,
            server=runtime.server_of(self.cid),
            name=f"order-{self.d_id}-{self.c_id}-{self.order_seq}",
            args=(self.order_seq, self.c_id, list(lines), total),
        )
        self._order_refs.append(order)
        self._undelivered.append(order)
        yield dispatch(warehouse.stock_deduct(self.d_id, list(lines)))
        return self.order_seq

    def add_order_direct(
        self,
        lines: Sequence[Tuple[int, int]],
        district: Optional[ContextRef],
    ) -> Generator:
        """Order insert without the stock dispatch (tree/unsafe callers)."""
        yield compute(DEFAULT_WORK.customer_order)
        self.order_seq += 1
        total = sum(qty * 10 for _item, qty in lines)
        runtime = self._aeon_runtime
        owners = [self.ref] if district is None else [self.ref, district]
        order = runtime.create_context(
            Order,
            owners=owners,
            server=runtime.server_of(self.cid),
            name=f"order-{self.d_id}-{self.c_id}-{self.order_seq}",
            args=(self.order_seq, self.c_id, list(lines), total),
        )
        self._order_refs.append(order)
        self._undelivered.append(order)
        return self.order_seq

    def unsafe_new_order(
        self,
        lines: Sequence[Tuple[int, int]],
        warehouse: ContextRef,
        district: ContextRef,
    ) -> Generator:
        """Orleans*: direct grain calls, no cross-grain atomicity.

        Calls only leaf grain turns (no grain that might synchronously
        call back) — real Orleans applications must structure calls this
        way or risk the non-reentrancy deadlock §2.1 warns about.
        """
        order_id = yield from self.add_order_direct(lines, None)
        yield warehouse.stock_deduct_unsafe(list(lines))
        yield district.note_stock([item for item, _qty in lines])
        return order_id

    def unsafe_payment(
        self, amount: int, warehouse: ContextRef, district: ContextRef
    ) -> Generator:
        """Orleans*: apply the payment with per-grain turns only."""
        yield from self.pay(amount)
        yield warehouse.pay_ytd(amount)
        yield district.pay_ytd(amount)
        return self.balance

    # ------------------------------------------------------------------
    # Payment tail (the end of the WH -> District -> Customer chain)
    # ------------------------------------------------------------------
    def pay(self, amount: int) -> Generator:
        """Apply a payment and append the folded History row."""
        yield compute(DEFAULT_WORK.customer_payment)
        self.balance -= amount
        self.ytd_payment += amount
        self.payment_count += 1
        self.history.append((self._aeon_runtime.sim.now, amount))
        return self.balance

    @cost(1.0)
    def credit(self, amount: int) -> int:
        """Delivery credit (called by the District in multi-ownership)."""
        self.balance += amount
        self.delivery_count += 1
        return self.balance

    def deliver_oldest(self, carrier_id: int) -> Generator:
        """Single ownership: the district delivers through the customer."""
        yield compute(1.0)
        while self._undelivered:
            order = self._undelivered.pop(0)
            total, _cid = yield order.deliver(carrier_id)
            self.balance += total
            self.delivery_count += 1
            return total
        return 0

    # ------------------------------------------------------------------
    # OrderStatus (read-only, 4%)
    # ------------------------------------------------------------------
    @readonly
    def order_status(self) -> Generator:
        """Status of the customer's most recent order."""
        yield compute(DEFAULT_WORK.readonly_probe)
        if not self._order_refs:
            return None
        status = yield self._order_refs[-1].status()
        return status


class District(ContextClass):
    """A district: the partitioning unit (one per server, as in Rococo)."""

    size_bytes = 32768

    customers = RefSet(Customer)
    orders = RefSet(Order)  # populated only in the multi-ownership wiring

    def __init__(self, d_id: int) -> None:
        self.d_id = d_id
        self.d_ytd = 0
        self.next_o_id = 1
        self.recent_items: List[int] = []
        self.delivered_upto = 0

    # ------------------------------------------------------------------
    # Payment middle stage (asynchronous continuation from the WH)
    # ------------------------------------------------------------------
    def accept_payment(self, customer: ContextRef, amount: int) -> Generator:
        """District leg of Payment; continues asynchronously downward."""
        yield compute(DEFAULT_WORK.district_payment)
        self.d_ytd += amount
        yield async_(customer.pay(amount))

    def accept_payment_sync(self, customer: ContextRef, amount: int) -> Generator:
        """Synchronous Payment leg (EventWave-style orchestration)."""
        yield compute(DEFAULT_WORK.district_payment)
        self.d_ytd += amount
        yield customer.pay(amount)

    @cost(0.5)
    def pay_ytd(self, amount: int) -> None:
        """Orleans*: bare district-ytd update (single grain turn)."""
        self.d_ytd += amount

    # ------------------------------------------------------------------
    # Stock summary note (the Warehouse's synchronous call)
    # ------------------------------------------------------------------
    @cost(0.8)
    def note_stock(self, item_ids: Sequence[int]) -> None:
        """Track recently ordered items (feeds StockLevel)."""
        self.recent_items.extend(item_ids)
        if len(self.recent_items) > 200:
            del self.recent_items[: len(self.recent_items) - 200]

    # ------------------------------------------------------------------
    # Delivery (4%)
    # ------------------------------------------------------------------
    def deliver(self, carrier_id: int, multi_ownership: bool) -> Generator:
        """Deliver the oldest undelivered order of this district."""
        yield compute(DEFAULT_WORK.district_delivery)
        if multi_ownership:
            orders = self.children_of_type("Order")
            while self.delivered_upto < len(orders):
                order = orders[self.delivered_upto]
                self.delivered_upto += 1
                total, c_id = yield order.deliver(carrier_id)
                customer = self._customer_ref(c_id)
                if customer is not None:
                    yield customer.credit(total)
                return total
            return 0
        customers = self.customers.refs()
        if not customers:
            return 0
        target = customers[carrier_id % len(customers)]
        total = yield target.deliver_oldest(carrier_id)
        return total

    def _customer_ref(self, c_id: int) -> Optional[ContextRef]:
        for customer in self.customers:
            instance = self._aeon_runtime.instances.get(customer.cid)
            if instance is not None and instance.c_id == c_id:
                return customer
        return None

    @readonly
    @cost(1.2)
    def recent_item_ids(self) -> List[int]:
        """The item ids of recently placed orders (read-only)."""
        return list(self.recent_items[-100:])

    @readonly
    @cost(0.5)
    def order_count(self) -> int:
        """How many orders this district has sequenced (read-only)."""
        return self.next_o_id - 1


class Warehouse(ContextClass):
    """The warehouse: stock rows folded in, one per deployment."""

    size_bytes = 262144

    districts = RefSet(District)

    def __init__(self, w_id: int, n_items: int) -> None:
        self.w_id = w_id
        self.w_ytd = 0
        self.stock: Dict[int, int] = {item: 1000 for item in range(n_items)}

    # ------------------------------------------------------------------
    # Payment head (43%) — the chain-release showcase
    # ------------------------------------------------------------------
    def payment(
        self, district: ContextRef, customer: ContextRef, amount: int
    ) -> Generator:
        """Warehouse leg of Payment; hands off to the District (async)."""
        yield compute(DEFAULT_WORK.wh_payment)
        self.w_ytd += amount
        yield async_(district.accept_payment(customer, amount))

    # ------------------------------------------------------------------
    # Stock deduction (dispatched by NewOrder)
    # ------------------------------------------------------------------
    def stock_deduct(self, d_id: int, lines: Sequence[Tuple[int, int]]) -> Generator:
        """Decrement stock; refresh the district's stock summary.

        The synchronous ``note_stock`` call is what couples Warehouse
        hold time to District congestion: in the multi-ownership wiring
        the District is busy sequencing customer events, so the
        Warehouse waits longer — saturating earlier (Fig. 6a).
        """
        yield compute(DEFAULT_WORK.wh_stock)
        for item, qty in lines:
            remaining = self.stock.get(item, 0) - qty
            if remaining < 10:
                remaining += 91  # TPC-C's restock rule
            self.stock[item] = remaining
        district = self._district_ref(d_id)
        if district is not None:
            yield district.note_stock([item for item, _qty in lines])

    def _district_ref(self, d_id: int) -> Optional[ContextRef]:
        for district in self.districts:
            instance = self._aeon_runtime.instances.get(district.cid)
            if instance is not None and instance.d_id == d_id:
                return district
        return None

    @cost(0.5)
    def pay_ytd(self, amount: int) -> None:
        """Orleans*: bare warehouse-ytd update (single grain turn)."""
        self.w_ytd += amount

    def stock_deduct_unsafe(self, lines: Sequence[Tuple[int, int]]) -> Generator:
        """Orleans*: stock decrement as a leaf grain turn (no district
        call — synchronous fan-in from a busy grain would deadlock)."""
        yield compute(DEFAULT_WORK.wh_stock)
        for item, qty in lines:
            remaining = self.stock.get(item, 0) - qty
            if remaining < 10:
                remaining += 91
            self.stock[item] = remaining

    # ------------------------------------------------------------------
    # Tree orchestration (the Orleans lock variant, "a la EventWave")
    # ------------------------------------------------------------------
    def tree_new_order(
        self,
        district: ContextRef,
        customer: ContextRef,
        d_id: int,
        lines: Sequence[Tuple[int, int]],
    ) -> Generator:
        """NewOrder executed entirely under the Warehouse grain's turn."""
        yield compute(DEFAULT_WORK.wh_stock)
        for item, qty in lines:
            remaining = self.stock.get(item, 0) - qty
            if remaining < 10:
                remaining += 91
            self.stock[item] = remaining
        order_id = yield customer.add_order_direct(list(lines), None)
        yield district.note_stock([item for item, _qty in lines])
        return order_id

    def tree_payment(
        self, district: ContextRef, customer: ContextRef, amount: int
    ) -> Generator:
        """Payment executed entirely under the Warehouse grain's turn."""
        yield compute(DEFAULT_WORK.wh_payment)
        self.w_ytd += amount
        yield district.accept_payment_sync(customer, amount)

    def tree_delivery(self, district: ContextRef, carrier_id: int) -> Generator:
        """Delivery orchestrated from the Warehouse grain."""
        total = yield district.deliver(carrier_id, False)
        return total

    def tree_order_status(self, customer: ContextRef) -> Generator:
        """OrderStatus orchestrated from the Warehouse grain."""
        status = yield customer.order_status()
        return status

    # ------------------------------------------------------------------
    # StockLevel (read-only, 4%)
    # ------------------------------------------------------------------
    @readonly
    def stock_level(self, district: ContextRef, threshold: int) -> Generator:
        """Count recently ordered items whose stock is below threshold."""
        yield compute(DEFAULT_WORK.readonly_probe)
        recent = yield district.recent_item_ids()
        low = sum(1 for item in set(recent) if self.stock.get(item, 0) < threshold)
        return low

    @readonly
    @cost(0.5)
    def ytd(self) -> int:
        """Year-to-date takings (read-only)."""
        return self.w_ytd
