"""The multiplayer game application (§2, §6.1.1).

An arena (``Building``) contains ``Room`` contexts, one per server (the
Fig. 5a deployment); each room holds players and items.  Every player
owns a private ``gold_mine`` and ``treasure`` (the Listing 1 example), a
fraction of the players additionally *share* room items — sharing is
what exercises multiple ownership.

The same contextclasses serve all five measured systems; what changes is
the *wiring* and which method the client op targets:

=============  ==============================================  =========================
variant        shared-item access                              runtime
=============  ==============================================  =========================
``aeon``       player owns shared items, direct calls          AeonRuntime (multi-owner)
``aeon_so``    shared items owned by the Room only; shared     AeonRuntime
               ops are events *on the Room*
``eventwave``  same wiring as ``aeon_so``                      EventWaveRuntime
``orleans``    ALL item access via the Room grain (the lock-   OrleansRuntime
               the-whole-Room strictly serializable variant)
``orleans*``   players call item grains directly — fast but    OrleansRuntime
               non-atomic (the best-case erroneous variant)
=============  ==============================================  =========================
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.context import ContextClass, ContextRef, Ref, RefSet, cost, readonly
from ..core.events import CallSpec, async_, compute
from ..core.runtime import RuntimeBase
from ..sim.cluster import Server

__all__ = [
    "Item",
    "Player",
    "Room",
    "Building",
    "GameConfig",
    "GameApp",
    "build_game",
    "GAME_VARIANTS",
]

GAME_VARIANTS = ("aeon", "aeon_so", "eventwave", "orleans", "orleans_star")


class Item(ContextClass):
    """A game object: gold containers, weapons, furniture."""

    size_bytes = 4096

    def __init__(self, qty: int = 0) -> None:
        self.qty = qty
        self.uses = 0
        self.time_of_day = 0

    @cost(0.9)
    def get(self, amount: int) -> bool:
        """Withdraw ``amount``; returns whether the item had enough."""
        if self.qty >= amount:
            self.qty -= amount
            return True
        return False

    @cost(0.9)
    def put(self, player_id: int, amount: int) -> None:
        """Deposit ``amount`` on behalf of ``player_id``."""
        self.qty += amount
        self.uses += 1

    @cost(1.5)
    def use(self, player_id: int) -> int:
        """Interact with the item; returns its use count."""
        self.uses += 1
        return self.uses

    @readonly
    @cost(0.5)
    def peek(self) -> int:
        """Current quantity (read-only)."""
        return self.qty

    def set_time(self, tick: int) -> None:
        """Apply a time-of-day change."""
        self.time_of_day = tick


class Player(ContextClass):
    """A connected player; owns private items and maybe shared ones."""

    size_bytes = 16384

    gold_mine = Ref(Item)
    treasure = Ref(Item)
    shared_items = RefSet(Item)

    def __init__(self, player_id: int) -> None:
        self.player_id = player_id
        self.time_of_day = 0
        # Plain (non-ownership) grain reference, wired only for the
        # Orleans lock variant: AEON's type system rejects an upward
        # Ref(Room) here (cycle), Orleans grains are unordered.
        self.room_grain: "ContextRef | None" = None

    @cost(0.6)
    def get_gold(self, amount: int):
        """Move gold from the private mine to the private treasure."""
        ok = yield self.gold_mine.get(amount)
        if ok:
            yield self.treasure.put(self.player_id, amount)
        return ok

    @cost(0.4)
    def use_shared(self, index: int):
        """Interact with one of the player's shared items (multi-owner)."""
        items = self.shared_items.refs()
        if not items:
            return 0
        target = items[index % len(items)]
        result = yield target.use(self.player_id)
        return result

    def get_gold_via_room(self, amount: int):
        """Orleans lock variant: the whole Room arbitrates item access."""
        result = yield self.room_grain.do_get_gold(self.player_id, amount)
        return result

    def use_shared_via_room(self, index: int):
        """Orleans lock variant: shared access through the Room grain."""
        result = yield self.room_grain.do_use_item(self.player_id, index)
        return result

    def update_time_of_day(self, tick: int):
        """Apply a time change to the player and its private items."""
        self.time_of_day = tick
        yield compute(0.05)
        yield self.gold_mine.set_time(tick)
        yield self.treasure.set_time(tick)

    @readonly
    @cost(0.4)
    def wealth_hint(self) -> int:
        """A cheap read-only probe on the player."""
        return self.player_id


class Room(ContextClass):
    """A room: owns its players and items; one per server in Fig. 5a."""

    size_bytes = 1_000_000  # the Fig. 8 migration unit

    players = RefSet(Player)
    items = RefSet(Item)

    def __init__(self, room_id: int) -> None:
        self.room_id = room_id
        self.time_of_day = 0
        # Player-id -> (mine, treasure) refs, for the via-room variants.
        self.player_items: Dict[int, Tuple[ContextRef, ContextRef]] = {}

    @readonly
    @cost(0.7)
    def nr_players(self) -> int:
        """Number of players in the room (read-only)."""
        return len(self.players)

    @readonly
    @cost(0.7)
    def nr_items(self) -> int:
        """Number of items in the room (read-only)."""
        return len(self.items)

    @cost(0.6)
    def do_get_gold(self, player_id: int, amount: int):
        """Perform a private-gold move under the Room's arbitration.

        Used by the single-ownership wirings (AEON_SO / EventWave target
        the Room as the event entry) and the Orleans lock variant (the
        Room grain serializes all item access).
        """
        refs = self.player_items.get(player_id)
        if refs is None:
            return False
        mine, treasure = refs
        ok = yield mine.get(amount)
        if ok:
            yield treasure.put(player_id, amount)
        return ok

    @cost(0.4)
    def do_use_item(self, player_id: int, index: int):
        """Interact with a room item on behalf of a player."""
        items = self.items.refs()
        if not items:
            return 0
        target = items[index % len(items)]
        result = yield target.use(player_id)
        return result

    def update_time_of_day(self, tick: int):
        """Propagate a time change to everything in the room (async)."""
        self.time_of_day = tick
        yield compute(0.1)
        for player in self.players:
            yield async_(player.update_time_of_day(tick))


class Building(ContextClass):
    """The arena root (the Castle of Fig. 3)."""

    size_bytes = 65536

    rooms = RefSet(Room)

    def __init__(self, name: str = "castle") -> None:
        self.name = name
        self.time_of_day = 0

    def update_time_of_day(self, tick: int):
        """Change the time of day in all rooms in parallel (Listing 1)."""
        self.time_of_day = tick
        for room in self.rooms:
            yield async_(room.update_time_of_day(tick))

    @readonly
    def count_players(self):
        """Total players across all rooms (read-only, Listing 1)."""
        total = 0
        for room in self.rooms:
            total += yield room.nr_players()
        return total


@dataclass
class GameConfig:
    """Deployment and workload-mix parameters for the game."""

    rooms: int = 4
    players_per_room: int = 8
    shared_items_per_room: int = 4
    #: Fraction of each room's players that own (hence share) room items.
    sharers_fraction: float = 0.4
    gold_supply: int = 10_000_000
    #: Op mix: private gold moves / shared item uses / read-only probes.
    p_private: float = 0.55
    p_shared: float = 0.15
    p_readonly: float = 0.30

    def validate(self) -> None:
        """Sanity-check the mix and sizes."""
        total = self.p_private + self.p_shared + self.p_readonly
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"op mix must sum to 1.0, got {total}")
        if self.rooms < 1 or self.players_per_room < 1:
            raise ValueError("need at least one room and one player")


@dataclass
class GameApp:
    """Handles to a built game plus the client-op sampler."""

    runtime: RuntimeBase
    variant: str
    config: GameConfig
    building: ContextRef
    rooms: List[ContextRef] = field(default_factory=list)
    players: List[List[ContextRef]] = field(default_factory=list)
    room_servers: List[Server] = field(default_factory=list)
    #: Cumulative room-pick distribution; None = uniform (the default,
    #: which keeps historical draw sequences byte-identical).  Set via
    #: :meth:`set_room_weights` for skewed-traffic experiments.
    _room_cdf: Optional[List[float]] = None

    def set_room_weights(self, weights: Sequence[float]) -> None:
        """Skew client traffic across rooms (fig11's hot/cold mix).

        ``weights[i]`` is room *i*'s relative share of client ops; they
        need not sum to one.  Costs one ``rng.random()`` draw per op in
        place of the uniform ``rng.randrange`` draw.
        """
        if len(weights) != len(self.rooms):
            raise ValueError(
                f"need one weight per room ({len(self.rooms)}), got {len(weights)}"
            )
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise ValueError("room weights must be non-negative with a positive sum")
        cdf, acc = [], 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float drift
        self._room_cdf = cdf

    def sample_op(self, rng: Random) -> Tuple[CallSpec, str]:
        """Draw one client operation ``(spec, tag)`` from the mix."""
        if self._room_cdf is None:
            room_idx = rng.randrange(len(self.rooms))
        else:
            room_idx = bisect.bisect_left(self._room_cdf, rng.random())
        player_idx = rng.randrange(len(self.players[room_idx]))
        player = self.players[room_idx][player_idx]
        room = self.rooms[room_idx]
        roll = rng.random()
        config = self.config
        if roll < config.p_private:
            return self._private_op(room, player, rng), "private"
        if roll < config.p_private + config.p_shared:
            return self._shared_op(room, player, rng), "shared"
        return self._readonly_op(room, player, rng), "readonly"

    def _private_op(self, room: ContextRef, player: ContextRef, rng: Random) -> CallSpec:
        amount = rng.randrange(1, 50)
        if self.variant == "orleans":
            return player.get_gold_via_room(amount)
        if self.variant in ("aeon_so", "eventwave"):
            # Single ownership: ALL items belong to the Room, so even a
            # player's private gold moves are events on the Room (the
            # EventWave game design the paper reuses).
            return room.do_get_gold(self._player_id_of(player), amount)
        return player.get_gold(amount)

    def _shared_op(self, room: ContextRef, player: ContextRef, rng: Random) -> CallSpec:
        index = rng.randrange(max(1, self.config.shared_items_per_room))
        if self.variant in ("aeon_so", "eventwave"):
            # Without multiple ownership, shared items are reachable
            # only through the Room: the op is an event on the Room.
            player_id = self._player_id_of(player)
            return room.do_use_item(player_id, index)
        if self.variant == "orleans":
            return player.use_shared_via_room(index)
        # aeon / orleans_star: direct access through (shared) ownership.
        return player.use_shared(index)

    def _readonly_op(self, room: ContextRef, player: ContextRef, rng: Random) -> CallSpec:
        return room.nr_players() if rng.random() < 0.7 else room.nr_items()

    def _player_id_of(self, player: ContextRef) -> int:
        return self.runtime.instance_of(player).player_id

    def total_gold(self) -> int:
        """Conservation check: total gold across all private items."""
        total = 0
        for room_players in self.players:
            for player in room_players:
                instance = self.runtime.instance_of(player)
                total += self.runtime.instance_of(instance.gold_mine).qty
                total += self.runtime.instance_of(instance.treasure).qty
        return total


def build_game(
    runtime: RuntimeBase,
    config: GameConfig,
    variant: str,
    servers: Optional[Sequence[Server]] = None,
) -> GameApp:
    """Construct the game's context graph for ``variant`` on ``runtime``.

    With AEON/EventWave, each Room and its contents are co-located on one
    server (the runtime's placement optimization the paper credits in
    §6.1.1); Orleans variants pass ``server=None`` and get hash placement.
    """
    if variant not in GAME_VARIANTS:
        raise ValueError(f"unknown game variant {variant!r}; pick from {GAME_VARIANTS}")
    config.validate()
    colocate = variant in ("aeon", "aeon_so", "eventwave")
    server_pool = list(servers or runtime.cluster.alive_servers().values())
    if not server_pool:
        raise ValueError("no servers available to host the game")

    def host(index: int) -> Optional[Server]:
        return server_pool[index % len(server_pool)] if colocate else None

    multi_ownership = variant in ("aeon", "orleans", "orleans_star")
    sharers = max(1, int(round(config.players_per_room * config.sharers_fraction)))
    player_seq = 0

    building = runtime.create_context(
        Building, server=host(0), name="castle", args=("castle",)
    )
    app = GameApp(runtime=runtime, variant=variant, config=config, building=building)
    per_player_gold = config.gold_supply // max(
        1, config.rooms * config.players_per_room
    )
    for room_idx in range(config.rooms):
        room_server = host(room_idx)
        room = runtime.create_context(
            Room,
            owners=[building],
            server=room_server,
            name=f"room-{room_idx}",
            args=(room_idx,),
        )
        runtime.instance_of(building).rooms.add(room)
        app.rooms.append(room)
        if room_server is not None:
            app.room_servers.append(room_server)

        shared_refs: List[ContextRef] = []
        for item_idx in range(config.shared_items_per_room):
            item = runtime.create_context(
                Item,
                owners=[room],
                server=room_server,
                name=f"room-{room_idx}-item-{item_idx}",
                args=(0,),
            )
            runtime.instance_of(room).items.add(item)
            shared_refs.append(item)

        room_players: List[ContextRef] = []
        for p_idx in range(config.players_per_room):
            player_seq += 1
            player = runtime.create_context(
                Player,
                owners=[room],
                server=room_server,
                name=f"player-{player_seq}",
                args=(player_seq,),
            )
            runtime.instance_of(room).players.add(player)
            mine = runtime.create_context(
                Item,
                owners=[player],
                server=room_server,
                name=f"player-{player_seq}-mine",
                args=(per_player_gold,),
            )
            treasure = runtime.create_context(
                Item,
                owners=[player],
                server=room_server,
                name=f"player-{player_seq}-treasure",
                args=(0,),
            )
            player_instance = runtime.instance_of(player)
            player_instance.gold_mine = mine
            player_instance.treasure = treasure
            runtime.instance_of(room).player_items[player_seq] = (mine, treasure)
            if variant == "orleans":
                player_instance.room_grain = room
            if multi_ownership and p_idx < sharers and shared_refs:
                for item in shared_refs:
                    player_instance.shared_items.add(item)
            room_players.append(player)
        app.players.append(room_players)
    return app
