"""The massive-tier application: a million leaf contexts, columnar.

A three-level tree — one ``Region`` root, a shard layer (one ``Shard``
per server by default) and a huge population of single-parent leaf
contexts — sized so the interesting cost is per-context *bookkeeping*,
not per-context behaviour.  Leaves are registered through
:meth:`~repro.core.runtime.RuntimeBase.create_contexts_bulk`: every leaf
gets a columnar table row (cid, placement, parent link, ownership
registration) up front, but its Python instance and lock materialize
lazily on first touch.  A run that samples a few hundred thousand ops
over a million registered players therefore builds a few hundred
thousand object graphs, never a million.

Two flavors share the builder so the game- and TPC-C-shaped scenarios
(``massive_game`` / ``massive_tpcc``, docs/SCENARIOS.md) stay honest
cousins of the paper's applications:

* ``"game"`` — ``MassivePlayer`` leaves with an exclusive ``tap`` and a
  read-only ``peek`` (the Listing 1 player, stripped to its hot path);
* ``"tpcc"`` — ``MassiveTerminal`` leaves with ``new_order`` /
  ``order_status`` under district shards.

Because every leaf has exactly one parent, its dominator under the AEON
protocol is itself: an event on a leaf locks only that leaf, so the
tree sustains the full fleet's parallelism at any population size.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import List, Sequence, Tuple

from ..core.context import ContextClass, ContextRef, cost, readonly
from ..core.events import CallSpec
from ..core.runtime import RuntimeBase
from ..sim.cluster import Server

__all__ = [
    "Region",
    "Shard",
    "MassivePlayer",
    "MassiveTerminal",
    "MassiveConfig",
    "MassiveApp",
    "build_massive",
    "run_checksum",
    "MASSIVE_FLAVORS",
]


class Region(ContextClass):
    """The tree root; exists so shards have a common owner."""

    size_bytes = 65536

    def __init__(self, name: str = "region") -> None:
        self.name = name


class Shard(ContextClass):
    """A mid-tier shard: the direct parent of a slice of the leaves."""

    size_bytes = 65536

    def __init__(self, shard_id: int = 0) -> None:
        self.shard_id = shard_id
        self.touched = 0

    @cost(0.6)
    def bump(self) -> int:
        """Count a shard-level touch (exclusive)."""
        self.touched += 1
        return self.touched

    @readonly
    @cost(0.4)
    def load_hint(self) -> int:
        """Shard-level touches so far (read-only)."""
        return self.touched


class MassivePlayer(ContextClass):
    """A game-flavor leaf: score accumulation plus a read-only probe.

    ``__init__`` takes no arguments — a bulk-registered leaf is built
    lazily on first touch (see ``create_contexts_bulk``), so identity
    lives in the cid, not in constructor state.
    """

    size_bytes = 512

    def __init__(self) -> None:
        self.score = 0
        self.taps = 0

    @cost(0.3)
    def tap(self, delta: int) -> int:
        """Add ``delta`` to the player's score (exclusive)."""
        self.score += delta
        self.taps += 1
        return self.score

    @readonly
    @cost(0.2)
    def peek(self) -> int:
        """Current score (read-only)."""
        return self.score

    def digest(self) -> str:
        """Deterministic state line for the run checksum."""
        return f"{self.score}|{self.taps}"


class MassiveTerminal(ContextClass):
    """A TPC-C-flavor leaf: order submission plus a status probe."""

    size_bytes = 512

    def __init__(self) -> None:
        self.orders = 0
        self.quantity = 0

    @cost(0.5)
    def new_order(self, qty: int) -> int:
        """Place an order of ``qty`` units (exclusive)."""
        self.orders += 1
        self.quantity += qty
        return self.orders

    @readonly
    @cost(0.2)
    def order_status(self) -> int:
        """Orders placed so far (read-only)."""
        return self.orders

    def digest(self) -> str:
        """Deterministic state line for the run checksum."""
        return f"{self.orders}|{self.quantity}"


@dataclass(frozen=True)
class _Flavor:
    """Naming and op shape of one massive-tier flavor."""

    root: str
    shard_prefix: str
    leaf_prefix: str
    leaf_cls: type
    write_method: str
    write_tag: str
    read_method: str
    read_tag: str


MASSIVE_FLAVORS = {
    "game": _Flavor(
        root="arena",
        shard_prefix="zone",
        leaf_prefix="p",
        leaf_cls=MassivePlayer,
        write_method="tap",
        write_tag="tap",
        read_method="peek",
        read_tag="peek",
    ),
    "tpcc": _Flavor(
        root="exchange",
        shard_prefix="district",
        leaf_prefix="t",
        leaf_cls=MassiveTerminal,
        write_method="new_order",
        write_tag="new_order",
        read_method="order_status",
        read_tag="order_status",
    ),
}


@dataclass
class MassiveConfig:
    """Deployment and op-mix parameters for a massive-tier run."""

    contexts: int = 1_000_000
    shards: int = 0  # 0 -> one per server
    flavor: str = "game"  # "game" | "tpcc"
    #: Fraction of client ops that are read-only probes.
    p_read: float = 0.15

    def validate(self) -> None:
        """Sanity-check sizes and the mix."""
        if self.contexts < 1:
            raise ValueError("need at least one leaf context")
        if self.flavor not in MASSIVE_FLAVORS:
            raise ValueError(
                f"unknown massive flavor {self.flavor!r}; "
                f"pick from {tuple(MASSIVE_FLAVORS)}"
            )
        if not 0.0 <= self.p_read <= 1.0:
            raise ValueError(f"p_read must be in [0, 1], got {self.p_read}")


@dataclass
class MassiveApp:
    """Handles to a built massive deployment plus the client-op sampler."""

    runtime: RuntimeBase
    config: MassiveConfig
    region: ContextRef
    shards: List[ContextRef] = field(default_factory=list)

    def sample_op(self, rng: Random) -> Tuple[CallSpec, str]:
        """Draw one client operation ``(spec, tag)``.

        CallSpecs are built straight from the leaf cid — no ContextRef
        per leaf exists, matching the no-object-graph registration.
        """
        flavor = MASSIVE_FLAVORS[self.config.flavor]
        cid = f"{flavor.leaf_prefix}-{rng.randrange(self.config.contexts)}"
        if rng.random() < self.config.p_read:
            return CallSpec(cid, flavor.read_method, (), {}), flavor.read_tag
        amount = rng.randrange(1, 10)
        return CallSpec(cid, flavor.write_method, (amount,), {}), flavor.write_tag


def build_massive(
    runtime: RuntimeBase,
    config: MassiveConfig,
    servers: Sequence[Server],
) -> MassiveApp:
    """Construct the massive tree: root + shards eagerly, leaves in bulk.

    Shards round-robin over ``servers``; leaf ``i``'s parent is shard
    ``i % n_shards`` and its placement is ``servers[i % n_servers]``,
    so with the default one-shard-per-server layout every leaf is
    co-located with its parent shard.
    """
    config.validate()
    if not servers:
        raise ValueError("no servers available to host the massive tree")
    flavor = MASSIVE_FLAVORS[config.flavor]
    n_shards = config.shards or len(servers)
    region = runtime.create_context(
        Region, server=servers[0], name=flavor.root, args=(flavor.root,)
    )
    app = MassiveApp(runtime=runtime, config=config, region=region)
    for i in range(n_shards):
        app.shards.append(
            runtime.create_context(
                Shard,
                owners=[region],
                server=servers[i % len(servers)],
                name=f"{flavor.shard_prefix}-{i}",
                args=(i,),
            )
        )
    cids = [f"{flavor.leaf_prefix}-{i}" for i in range(config.contexts)]
    parents = [app.shards[i % n_shards] for i in range(config.contexts)]
    runtime.create_contexts_bulk(flavor.leaf_cls, cids, servers, parents=parents)
    return app


def run_checksum(runtime: RuntimeBase, app: MassiveApp) -> str:
    """SHA-256 digest of a finished massive run's observable state.

    Hashes every *materialized* leaf's state in sorted-cid order plus
    the total completion count — cheap at any registered population
    (untouched leaves have no state by construction) yet sensitive to
    any reordering, lost op or double-apply.  Two runs of the same
    seeded scenario must produce identical digests.
    """
    flavor = MASSIVE_FLAVORS[app.config.flavor]
    prefix = f"{flavor.leaf_prefix}-"
    instances = runtime.instances
    lines = [
        f"{cid}|{instances[cid].digest()}"
        for cid in sorted(instances)
        if cid.startswith(prefix)
    ]
    lines.append(str(runtime.throughput.count_between(0.0, runtime.sim.now + 1.0)))
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()
